// Trajectory container and the SubRange value type naming a subtrajectory.
#ifndef SIMSUB_GEO_TRAJECTORY_H_
#define SIMSUB_GEO_TRAJECTORY_H_

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "geo/point.h"
#include "util/logging.h"

namespace simsub::geo {

/// Half-open-free inclusive index range [start, end] identifying the
/// subtrajectory T[start..end] (0-based, unlike the paper's 1-based text).
///
/// Indices are 64-bit: stored trajectories stay comfortably below 2^31
/// points, but streaming monitors (algo::SpringStream) report ranges in
/// *stream* positions, which grow without bound over the life of a
/// long-lived monitor — a 1 Hz feed crosses 2^31 in ~68 years, a 1 kHz
/// sensor in ~25 days.
struct SubRange {
  int64_t start = 0;
  int64_t end = 0;  // inclusive

  SubRange() = default;
  SubRange(int64_t s, int64_t e) : start(s), end(e) {}

  int64_t size() const { return end - start + 1; }
  bool operator==(const SubRange& o) const {
    return start == o.start && end == o.end;
  }
};

inline std::ostream& operator<<(std::ostream& os, const SubRange& r) {
  return os << "[" << r.start << ", " << r.end << "]";
}

/// A sequence of timestamped points with an integer identity.
///
/// The class is a thin, cache-friendly wrapper over std::vector<Point>;
/// algorithms take std::span<const Point> so subtrajectories never copy.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<Point> points, int64_t id = -1)
      : points_(std::move(points)), id_(id) {}

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// Number of points, |T| in the paper.
  int size() const { return static_cast<int>(points_.size()); }
  bool empty() const { return points_.empty(); }

  // Bounds checks are debug-only: operator[] sits inside the kernel scan
  // loops, and a Release branch per point is measurable (enable
  // SIMSUB_FORCE_DCHECK to keep them in optimized builds).
  const Point& operator[](int i) const {
    SIMSUB_DCHECK_GE(i, 0);
    SIMSUB_DCHECK_LT(i, size());
    return points_[static_cast<size_t>(i)];
  }

  const std::vector<Point>& points() const { return points_; }
  std::vector<Point>& mutable_points() { return points_; }

  void Append(const Point& p) { points_.push_back(p); }

  /// Whole-trajectory view.
  std::span<const Point> View() const { return {points_.data(), points_.size()}; }

  /// View of the subtrajectory T[r.start .. r.end] (inclusive, 0-based).
  std::span<const Point> View(const SubRange& r) const {
    SIMSUB_CHECK_GE(r.start, 0);
    SIMSUB_CHECK_LE(r.start, r.end);
    SIMSUB_CHECK_LT(r.end, size());
    return {points_.data() + r.start, static_cast<size_t>(r.size())};
  }

  /// Materializes T[r] as an owning trajectory (keeps the parent's id).
  Trajectory Slice(const SubRange& r) const;

  /// Returns the reversed trajectory (timestamps preserved positionally).
  Trajectory Reversed() const;

  /// Number of distinct subtrajectories, n(n+1)/2.
  int64_t SubtrajectoryCount() const {
    int64_t n = size();
    return n * (n + 1) / 2;
  }

  /// Total path length (sum of consecutive point distances).
  double PathLength() const;

  std::string DebugString(int max_points = 5) const;

 private:
  std::vector<Point> points_;
  int64_t id_ = -1;
};

/// Reverses a point span into a new vector (helper for suffix evaluation).
std::vector<Point> ReversePoints(std::span<const Point> pts);

}  // namespace simsub::geo

#endif  // SIMSUB_GEO_TRAJECTORY_H_
