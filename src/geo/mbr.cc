#include "geo/mbr.h"

namespace simsub::geo {

Mbr ComputeMbr(std::span<const Point> pts) {
  Mbr mbr;
  for (const Point& p : pts) mbr.Extend(p);
  return mbr;
}

}  // namespace simsub::geo
