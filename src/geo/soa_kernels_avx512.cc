// AVX-512 kernel tier: the shared kernel bodies compiled with -mavx512f
// (zmm sqrt/add/min; -ffp-contract=off keeps FMA contraction off so values
// stay bit-identical to the baseline tier). Selected at runtime only when
// __builtin_cpu_supports("avx512f"). On non-x86 targets CMake adds no ISA
// flag and this TU compiles identically to the baseline (never selected).
#define SIMSUB_ISA_NAMESPACE isa_avx512
#include "geo/soa_kernels.inc"
