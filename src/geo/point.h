// Core spatial primitives: timestamped 2-D points and distance helpers.
#ifndef SIMSUB_GEO_POINT_H_
#define SIMSUB_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace simsub::geo {

/// A timestamped location sample: position (x, y) observed at time t.
///
/// Coordinates are planar (meters in a local projection for the synthetic
/// city datasets; pitch meters for the sports dataset). Timestamps are
/// seconds from the start of the containing trajectory.
struct Point {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;

  Point() = default;
  Point(double px, double py, double pt = 0.0) : x(px), y(py), t(pt) {}

  bool operator==(const Point& o) const {
    return x == o.x && y == o.y && t == o.t;
  }
};

/// Squared Euclidean distance between the spatial components of a and b.
inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between the spatial components of a and b.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ", t=" << p.t << ")";
}

}  // namespace simsub::geo

#endif  // SIMSUB_GEO_POINT_H_
