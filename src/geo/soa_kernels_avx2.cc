// AVX2 kernel tier: the shared kernel bodies compiled with -mavx2 (and
// -ffp-contract=off — -mavx2 alone brings no FMA, but the flag pins it
// against flag drift; see geo/CMakeLists.txt). Selected at runtime only
// when __builtin_cpu_supports("avx2"), so the wider instructions never
// reach a CPU that lacks them. On non-x86 targets CMake adds no ISA flag
// and this TU compiles identically to the baseline (and is never selected).
#define SIMSUB_ISA_NAMESPACE isa_avx2
#include "geo/soa_kernels.inc"
