// Scalar AoS reference row fills — the BASELINE side of the kernel
// equivalence tests and of bench_kernels.
//
// This translation unit is compiled with -fmath-errno -fno-tree-vectorize
// (see geo/CMakeLists.txt): exactly the codegen the evaluators had before
// the SoA rewrite, when the project-wide -fno-math-errno flag did not exist
// and sqrt's errno contract kept the loops scalar. Keeping the old codegen
// here makes the bench's "scalar vs SoA" speedups describe the actual
// before/after of the hot path, not two equally-vectorized loops. The
// VALUES are unaffected by the flags (sqrt is correctly rounded either
// way), which is what the bit-identity tests rely on.
#include <span>

#include "geo/soa.h"

namespace simsub::geo {

void DistanceRowScalar(const Point& p, std::span<const Point> q, double* out) {
  for (size_t j = 0; j < q.size(); ++j) {
    out[j] = Distance(p, q[j]);
  }
}

void SquaredDistanceRowScalar(const Point& p, std::span<const Point> q,
                              double* out) {
  for (size_t j = 0; j < q.size(); ++j) {
    out[j] = SquaredDistance(p, q[j]);
  }
}

}  // namespace simsub::geo
