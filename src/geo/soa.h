// Structure-of-arrays point storage and the vectorized distance-row
// primitives behind the similarity kernels.
//
// The DP evaluators in src/similarity spend nearly all of their time
// computing d(p, q_j) for one data point p against every query point q_j.
// Over the AoS `Point` layout (x, y, t interleaved) that loop strides by
// 24 bytes and calls an errno-setting sqrt one element at a time; over the
// FlatPoints layout (contiguous x[] and y[] arrays) the same loop is a
// unit-stride sweep the compiler autovectorizes (the build enables
// -fno-math-errno precisely so sqrt can be emitted as a vector
// instruction).
//
// Two usage patterns, picked per kernel by what bench_kernels measures:
//  * throughput-bound passes with no loop-carried dependency — Hausdorff's
//    per-point row, ERP's per-query gap row, the engine's nearest-endpoint
//    lower bound — call the row primitives below and vectorize fully;
//  * latency-bound DP sweeps (DTW/ERP/EDR/LCSS/CDTW/Frechet recurrences,
//    serialized on scratch[j-1]) read the FlatPoints arrays directly with
//    the distance computed inline: the sqrt sits off the carried min/max
//    path and hides under it, while a separate row-fill pass would add
//    un-hideable loads and stores.
//
// All row primitives are elementwise-identical to their scalar AoS
// counterparts: out[j] is computed with exactly the arithmetic
// geo::Distance / geo::SquaredDistance performs, so rewritten kernels stay
// bit-identical to the scalar reference implementations.
#ifndef SIMSUB_GEO_SOA_H_
#define SIMSUB_GEO_SOA_H_

#include <cstddef>
#include <span>
#include <vector>

#include "geo/point.h"

namespace simsub::geo {

/// Non-owning view of contiguous x[] / y[] coordinate arrays.
struct PointsView {
  const double* x = nullptr;
  const double* y = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }

  /// View of elements [offset, offset + count).
  PointsView Slice(size_t offset, size_t count) const {
    return PointsView{x + offset, y + offset, count};
  }
};

/// Owning SoA copy of a point sequence (timestamps are dropped: the
/// similarity kernels are purely spatial). Built once per trajectory or
/// query and reused across every kernel invocation against it.
class FlatPoints {
 public:
  FlatPoints() = default;
  explicit FlatPoints(std::span<const Point> pts) { Assign(pts); }

  /// Replaces the contents with a fresh SoA copy of `pts`.
  void Assign(std::span<const Point> pts);

  void Clear() {
    x_.clear();
    y_.clear();
  }

  size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }

  PointsView View() const { return PointsView{x_.data(), y_.data(), x_.size()}; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

// The row and DP-row primitives below dispatch through the runtime ISA
// tier selected by geo/simd_dispatch.h (baseline / AVX2 / AVX-512 function
// pointers, SIMSUB_ISA override): a generic Release build runs the widest
// kernel codegen the machine supports without -march=native. All tiers are
// bit-identical (see the simd_dispatch.h contract).

/// out[j] = Euclidean distance from p to (q.x[j], q.y[j]) for all j.
/// Identical arithmetic to geo::Distance(p, q_j) per element.
void DistanceRow(const Point& p, PointsView q, double* out);

/// out[j] = squared Euclidean distance from p to (q.x[j], q.y[j]). The
/// squared variant for measures whose recurrences only compare distances
/// (min/max are monotone under sqrt), which skips the sqrt entirely.
void SquaredDistanceRow(const Point& p, PointsView q, double* out);

/// Minimum over j of SquaredDistance(p, q_j). Vectorized min-reduction used
/// by the engine's nearest-endpoint lower bound. Requires !q.empty().
double MinSquaredDistance(const Point& p, PointsView q);

/// DTW DP rows (the latency-bound sweeps of similarity/dtw.cc, hoisted here
/// so they compile once per ISA tier instead of once with generic flags).
/// DtwStartRow fills row[j] = sum_{k<=j} d(p, q_k) and returns row[m-1];
/// the row minimum is row[0] (prefix sums are non-decreasing).
/// Requires !q.empty().
double DtwStartRow(const Point& p, PointsView q, double* row);

/// DtwExtendRow fills out[j] = d(p, q_j) + min(prev[j-1], prev[j],
/// out[j-1]) (with the j == 0 edge case prev[0] + d), writes the row
/// minimum — the evaluator's non-decreasing early-abandoning lower bound —
/// to *row_min, and returns out[m-1]. `prev` and `out` must not alias.
/// Requires !q.empty().
double DtwExtendRow(const Point& p, PointsView q, const double* prev,
                    double* out, double* row_min);

/// Scalar AoS reference implementations (kept for the kernel-equivalence
/// tests and as the bench baseline; they mirror the pre-SoA evaluator code
/// exactly: one geo::Distance call per element over the interleaved layout).
void DistanceRowScalar(const Point& p, std::span<const Point> q, double* out);
void SquaredDistanceRowScalar(const Point& p, std::span<const Point> q,
                              double* out);

}  // namespace simsub::geo

#endif  // SIMSUB_GEO_SOA_H_
