#include "geo/points_store.h"

#include "util/logging.h"

namespace simsub::geo {

CorpusStats ComputeCorpusStats(std::span<const Mbr> mbrs) {
  CorpusStats stats;
  double sum_w = 0.0;
  double sum_h = 0.0;
  for (const Mbr& mbr : mbrs) {
    stats.extent.Extend(mbr);
    sum_w += mbr.Width();
    sum_h += mbr.Height();
  }
  if (!mbrs.empty()) {
    double n = static_cast<double>(mbrs.size());
    stats.mean_trajectory_width = sum_w / n;
    stats.mean_trajectory_height = sum_h / n;
  }
  return stats;
}

PointsStore PointsStore::FromTrajectories(
    std::span<const Trajectory> trajectories) {
  PointsStore store;
  store.count_ = trajectories.size();
  if (store.count_ == 0) return store;

  size_t total = 0;
  store.owned_offsets_.reserve(store.count_ + 1);
  store.owned_offsets_.push_back(0);
  for (const Trajectory& t : trajectories) {
    total += static_cast<size_t>(t.size());
    store.owned_offsets_.push_back(static_cast<uint64_t>(total));
  }
  store.owned_x_.reserve(total);
  store.owned_y_.reserve(total);
  for (const Trajectory& t : trajectories) {
    for (const Point& p : t.points()) {
      store.owned_x_.push_back(p.x);
      store.owned_y_.push_back(p.y);
    }
  }
  store.x_ = store.owned_x_.data();
  store.y_ = store.owned_y_.data();
  store.offsets_ = store.owned_offsets_.data();
  return store;
}

PointsStore PointsStore::FromColumns(const double* x, const double* y,
                                     const uint64_t* offsets,
                                     size_t trajectory_count,
                                     std::shared_ptr<const void> keep_alive) {
  PointsStore store;
  store.count_ = trajectory_count;
  if (trajectory_count == 0) return store;
  SIMSUB_CHECK(x != nullptr && y != nullptr && offsets != nullptr);
  SIMSUB_CHECK_EQ(offsets[0], 0u);
  store.x_ = x;
  store.y_ = y;
  store.offsets_ = offsets;
  store.keep_alive_ = std::move(keep_alive);
  return store;
}

}  // namespace simsub::geo
