// Runtime SIMD dispatch for the SoA kernels (geo/soa.h).
//
// Before this layer the vectorized kernels only reached the checked-in
// BENCH_kernels.json numbers when the whole project was compiled with
// -march=native: a generic Release binary was stuck with SSE2 codegen, and
// the CI bench baseline silently depended on whatever CPU compiled it. Now
// the kernel bodies (geo/soa_kernels.inc) are compiled THREE times — into a
// baseline TU (portable flags), an AVX2 TU (-mavx2) and an AVX-512 TU
// (-mavx512f) — and the best tier the running CPU supports is selected once
// per process through the function-pointer table below. A plain generic
// Release build therefore runs AVX2/AVX-512 kernel code on machines that
// have it, and SSE2 code on machines that don't, from the same binary.
//
// Bit-identity contract: every tier of every kernel performs exactly the
// same arithmetic in exactly the same order — the per-ISA TUs differ only
// in instruction selection, are all compiled with -ffp-contract=off (no
// FMA contraction, which WOULD change results), and the vectorizable loops
// are elementwise or exact (min/sqrt), so results are bit-identical across
// tiers. tests/geo/simd_dispatch_test.cc asserts this kernel-by-kernel for
// every tier the host supports, and the CI isa-matrix job asserts it
// end-to-end (identical top-k under each SIMSUB_ISA override).
//
// Override: SIMSUB_ISA=baseline|avx2|avx512 forces a tier at startup (the
// CI matrix runs the equivalence and determinism suites under each value).
// A tier the CPU cannot execute is clamped to the best supported one with
// a warning — requesting avx512 on an AVX2 box runs avx2, never SIGILL.
//
// The tier is resolved on the first kernel call and cached for the process
// lifetime; changing the environment afterwards has no effect.
#ifndef SIMSUB_GEO_SIMD_DISPATCH_H_
#define SIMSUB_GEO_SIMD_DISPATCH_H_

#include <cstddef>
#include <string_view>

namespace simsub::geo {

/// The compiled kernel tiers, ordered: a CPU supporting tier t supports
/// every tier below it (AVX-512F implies AVX2 implies SSE2).
enum class IsaTier { kBaseline = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase label ("baseline" / "avx2" / "avx512") — the spelling
/// the SIMSUB_ISA override accepts and the BENCH_*.json config records.
const char* IsaTierName(IsaTier tier);

/// Parses an IsaTier label; returns false (and leaves *tier alone) for
/// anything else.
bool ParseIsaName(std::string_view name, IsaTier* tier);

/// Best tier the running CPU can execute (cpuid, no env consulted).
IsaTier BestSupportedIsa();

/// Pure resolution rule: `override_value` is the SIMSUB_ISA string (null or
/// empty = no override), `best` is the hardware ceiling. An unparseable
/// override is ignored, a tier above `best` is clamped to it; both warn.
/// Exposed separately so tests can exercise the rule without mutating the
/// process environment (ActiveIsa caches its first answer forever).
IsaTier ResolveIsa(const char* override_value, IsaTier best);

/// The tier every dispatched kernel call uses: ResolveIsa(getenv
/// ("SIMSUB_ISA"), BestSupportedIsa()), computed once on first use and
/// cached for the process lifetime.
IsaTier ActiveIsa();
const char* ActiveIsaName();

/// One tier's kernel implementations. Raw-pointer signatures so the per-ISA
/// translation units need nothing from the rest of the project (they must
/// not inline project code compiled with wider ISA flags into callers).
struct SoaKernels {
  /// out[j] = distance / squared distance from (px,py) to (qx[j],qy[j]).
  void (*distance_row)(double px, double py, const double* qx,
                       const double* qy, size_t n, double* out);
  void (*squared_distance_row)(double px, double py, const double* qx,
                               const double* qy, size_t n, double* out);
  /// min over j of squared distance; requires n > 0.
  double (*min_squared_distance)(double px, double py, const double* qx,
                                 const double* qy, size_t n);
  /// DTW first DP row: row[j] = sum_{k<=j} d(p, q_k); returns row[n-1].
  double (*dtw_start_row)(double px, double py, const double* qx,
                          const double* qy, size_t n, double* row);
  /// DTW DP row extension: out[j] = d(p, q_j) + min(prev[j-1], prev[j],
  /// out[j-1]) with the j == 0 edge case, tracking the row minimum (the
  /// evaluator's early-abandoning lower bound). Returns out[n-1].
  double (*dtw_extend_row)(double px, double py, const double* qx,
                           const double* qy, size_t n, const double* prev,
                           double* out, double* row_min);
};

/// Kernel table of one tier. Always callable for tiers <= BestSupportedIsa();
/// calling into a higher tier's table executes instructions the CPU lacks.
/// Exists so the cross-tier equivalence test can compare every supported
/// tier in one process.
const SoaKernels& KernelsFor(IsaTier tier);

/// KernelsFor(ActiveIsa()) — what geo/soa.cc routes every call through.
const SoaKernels& ActiveKernels();

}  // namespace simsub::geo

#endif  // SIMSUB_GEO_SIMD_DISPATCH_H_
