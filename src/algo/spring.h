// SPRING (Sakurai, Faloutsos & Yamamuro, ICDE 2007): subsequence matching
// under DTW via a single dynamic program over the data sequence in which a
// match may start at any position (star-padding). Exact for unconstrained
// DTW; the paper compares it against RLS-Skip+ under a global alignment band
// (Figure 8): query point q_i may align with data point p_j only when
// |j - i| <= R * |T|.
#ifndef SIMSUB_ALGO_SPRING_H_
#define SIMSUB_ALGO_SPRING_H_

#include "algo/search.h"

namespace simsub::algo {

/// DTW-specific subsequence search. Unlike the measure-agnostic algorithms
/// this one is hard-wired to DTW, which is exactly the paper's point about
/// its limited generality.
class SpringSearch : public SubtrajectorySearch {
 public:
  /// `band_fraction` = R in the paper's Figure 8; alignment of q_i with p_j
  /// requires |j - i| <= R * n. R >= 1 disables the constraint.
  explicit SpringSearch(double band_fraction = 1.0);

  std::string name() const override { return "Spring"; }

  double band_fraction() const { return band_fraction_; }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:
  double band_fraction_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_SPRING_H_
