#include "algo/simtra.h"

#include "util/logging.h"

namespace simsub::algo {

SimTraSearch::SimTraSearch(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult SimTraSearch::DoSearch(std::span<const geo::Point> data,
                                  std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SearchResult result;
  result.best = geo::SubRange(0, static_cast<int>(data.size()) - 1);
  result.distance = measure_->Distance(data, query);
  result.stats.candidates = 1;
  result.stats.start_calls = 1;
  result.stats.extend_calls = static_cast<int64_t>(data.size()) - 1;
  return result;
}

}  // namespace simsub::algo
