// SimTra (paper Section 6.2, experiment 8): similar *trajectory* search used
// as an approximation of SimSub — the whole data trajectory is itself a
// subtrajectory, so returning it is a legal (and fast, but poor) answer.
#ifndef SIMSUB_ALGO_SIMTRA_H_
#define SIMSUB_ALGO_SIMTRA_H_

#include "algo/search.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// Whole-trajectory baseline.
class SimTraSearch : public SubtrajectorySearch {
 public:
  explicit SimTraSearch(const similarity::SimilarityMeasure* measure);

  std::string name() const override { return "SimTra"; }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_SIMTRA_H_
