#include "algo/spring.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace simsub::algo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SpringSearch::SpringSearch(double band_fraction)
    : band_fraction_(band_fraction) {
  SIMSUB_CHECK_GT(band_fraction, 0.0);
}

SearchResult SpringSearch::DoSearch(std::span<const geo::Point> data,
                                  std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  const int n = static_cast<int>(data.size());
  const int m = static_cast<int>(query.size());
  const long long band =
      band_fraction_ >= 1.0
          ? std::numeric_limits<long long>::max()
          : static_cast<long long>(std::ceil(band_fraction_ * n));

  // STWM (subsequence time-warping matrix): d[j] is the DTW cost of the best
  // warping path ending at (current data row, query column j); s[j] is the
  // data index where that path started. The virtual column j = -1 has cost 0
  // with start = current row, which is what lets matches begin anywhere.
  std::vector<double> prev_d(static_cast<size_t>(m), kInf);
  std::vector<double> cur_d(static_cast<size_t>(m), kInf);
  std::vector<int> prev_s(static_cast<size_t>(m), 0);
  std::vector<int> cur_s(static_cast<size_t>(m), 0);

  SearchResult result;
  for (int i = 0; i < n; ++i) {
    std::fill(cur_d.begin(), cur_d.end(), kInf);
    for (int j = 0; j < m; ++j) {
      if (std::llabs(static_cast<long long>(i) - j) > band) continue;
      double dist = geo::Distance(data[static_cast<size_t>(i)],
                                  query[static_cast<size_t>(j)]);
      double best;
      int start;
      if (j == 0) {
        // Column 0 sits next to the virtual star column of cost 0, so the
        // cheapest path always starts fresh at row i (all costs are
        // non-negative, hence min(0, D(i-1, 0)) = 0).
        best = 0.0;
        start = i;
      } else {
        best = cur_d[static_cast<size_t>(j) - 1];
        start = cur_s[static_cast<size_t>(j) - 1];
        if (i > 0) {
          if (prev_d[static_cast<size_t>(j)] < best) {
            best = prev_d[static_cast<size_t>(j)];
            start = prev_s[static_cast<size_t>(j)];
          }
          if (prev_d[static_cast<size_t>(j) - 1] < best) {
            best = prev_d[static_cast<size_t>(j) - 1];
            start = prev_s[static_cast<size_t>(j) - 1];
          }
        }
      }
      if (best == kInf) continue;
      cur_d[static_cast<size_t>(j)] = dist + best;
      cur_s[static_cast<size_t>(j)] = start;
    }
    ++result.stats.extend_calls;
    // A candidate match ends at every data row whose last query column is
    // reachable.
    if (cur_d.back() < result.distance) {
      result.distance = cur_d.back();
      result.best = geo::SubRange(cur_s.back(), i);
      ++result.stats.candidates;
    }
    prev_d.swap(cur_d);
    prev_s.swap(cur_s);
  }
  // With a tight band some (data, query) shapes admit no alignment at all;
  // fall back to the full trajectory so callers always get a valid range.
  if (result.distance == kInf) {
    result.best = geo::SubRange(0, n - 1);
    result.distance_exact = false;
  }
  return result;
}

}  // namespace simsub::algo
