#include "algo/splitting.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace simsub::algo {

PssSearch::PssSearch(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult PssSearch::DoSearch(std::span<const geo::Point> data,
                               std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  auto eval = measure_->NewEvaluator(query);
  return PrefixSuffixScan(*eval, data, query);
}

SearchResult PssSearch::DoSearchCached(
    std::span<const geo::Point> data, std::span<const geo::Point> query,
    similarity::EvaluatorCache& scratch) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  return PrefixSuffixScan(*scratch.Acquire(*measure_, query), data, query);
}

SearchResult PssSearch::PrefixSuffixScan(
    similarity::PrefixEvaluator& eval, std::span<const geo::Point> data,
    std::span<const geo::Point> query) const {
  SearchResult result;
  const int n = static_cast<int>(data.size());

  // Suffix distances dist(T[i..n-1]^R, Tq^R) in one backward pass
  // (Algorithm 2, lines 2-3).
  std::vector<double> suffix =
      similarity::ComputeSuffixDistances(*measure_, data, query);
  result.stats.start_calls += 1;
  result.stats.extend_calls += n - 1;

  int h = 0;  // Start of the current segment.
  for (int i = 0; i < n; ++i) {
    double pre = (i == h) ? eval.Start(data[static_cast<size_t>(i)])
                          : eval.Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    double suf = suffix[static_cast<size_t>(i)];
    result.stats.candidates += 2;
    // Greater similarity == smaller distance, so the paper's
    // "max similarity > best" test becomes "min distance < best".
    double cand = std::min(pre, suf);
    if (cand < result.distance) {
      result.distance = cand;
      bool prefix_wins = pre <= suf;
      result.best =
          prefix_wins ? geo::SubRange(h, i) : geo::SubRange(i, n - 1);
      // For learned measures the suffix distance is computed in reversed
      // space and is only an approximation of the forward distance
      // (paper Section 4.3).
      result.distance_exact =
          prefix_wins || measure_->ReversalPreservesDistance();
      h = i + 1;
      ++result.stats.splits;
    }
  }
  return result;
}

PosSearch::PosSearch(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult PosSearch::DoSearch(std::span<const geo::Point> data,
                               std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SearchResult result;
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  int h = 0;
  for (int i = 0; i < n; ++i) {
    double pre = (i == h) ? eval->Start(data[static_cast<size_t>(i)])
                          : eval->Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    ++result.stats.candidates;
    if (pre < result.distance) {
      result.distance = pre;
      result.best = geo::SubRange(h, i);
      h = i + 1;
      ++result.stats.splits;
    }
  }
  return result;
}

PosDSearch::PosDSearch(const similarity::SimilarityMeasure* measure, int delay)
    : measure_(measure), delay_(delay) {
  SIMSUB_CHECK(measure != nullptr);
  SIMSUB_CHECK_GE(delay, 0);
}

SearchResult PosDSearch::DoSearch(std::span<const geo::Point> data,
                                std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SearchResult result;
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  int h = 0;
  int i = h;
  while (i < n) {
    double pre = (i == h) ? eval->Start(data[static_cast<size_t>(i)])
                          : eval->Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    ++result.stats.candidates;
    if (pre < result.distance) {
      // Trigger: look ahead up to `delay_` more points and split where the
      // prefix is the most similar among these D + 1 positions.
      double best_d = pre;
      int best_i = i;
      int lookahead_end = std::min(n - 1, i + delay_);
      for (int j = i + 1; j <= lookahead_end; ++j) {
        double d = eval->Extend(data[static_cast<size_t>(j)]);
        ++result.stats.extend_calls;
        ++result.stats.candidates;
        if (d < best_d) {
          best_d = d;
          best_i = j;
        }
      }
      result.distance = best_d;
      result.best = geo::SubRange(h, best_i);
      h = best_i + 1;
      ++result.stats.splits;
      // Points after best_i within the lookahead window are re-scanned as
      // part of the new segment (the paper notes the in-practice cost is
      // "slightly higher" while the asymptotic complexity is unchanged).
      i = h;
    } else {
      ++i;
    }
  }
  return result;
}

}  // namespace simsub::algo
