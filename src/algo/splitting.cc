#include "algo/splitting.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace simsub::algo {

PssSearch::PssSearch(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult PssSearch::DoSearch(std::span<const geo::Point> data,
                               std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  auto eval = measure_->NewEvaluator(query);
  return PrefixSuffixScan(*eval, data, query);
}

SearchResult PssSearch::DoSearchCached(
    std::span<const geo::Point> data, std::span<const geo::Point> query,
    similarity::EvaluatorCache& scratch) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  return PrefixSuffixScan(*scratch.Acquire(*measure_, query), data, query);
}

SearchResult PssSearch::DoSearchBounded(std::span<const geo::Point> data,
                                        std::span<const geo::Point> query,
                                        similarity::EvaluatorCache* scratch,
                                        double bailout) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  std::unique_ptr<similarity::PrefixEvaluator> owned;
  similarity::PrefixEvaluator* eval =
      similarity::AcquireEvaluator(*measure_, query, scratch, &owned);
  return PrefixSuffixScanBounded(*eval, data, query, bailout);
}

SearchResult PssSearch::PrefixSuffixScan(
    similarity::PrefixEvaluator& eval, std::span<const geo::Point> data,
    std::span<const geo::Point> query) const {
  SearchResult result;
  const int n = static_cast<int>(data.size());

  // Suffix distances dist(T[i..n-1]^R, Tq^R) in one backward pass
  // (Algorithm 2, lines 2-3).
  std::vector<double> suffix =
      similarity::ComputeSuffixDistances(*measure_, data, query);
  result.stats.start_calls += 1;
  result.stats.extend_calls += n - 1;

  int h = 0;  // Start of the current segment.
  for (int i = 0; i < n; ++i) {
    double pre = (i == h) ? eval.Start(data[static_cast<size_t>(i)])
                          : eval.Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    double suf = suffix[static_cast<size_t>(i)];
    result.stats.candidates += 2;
    // Greater similarity == smaller distance, so the paper's
    // "max similarity > best" test becomes "min distance < best".
    double cand = std::min(pre, suf);
    if (cand < result.distance) {
      result.distance = cand;
      bool prefix_wins = pre <= suf;
      result.best =
          prefix_wins ? geo::SubRange(h, i) : geo::SubRange(i, n - 1);
      // For learned measures the suffix distance is computed in reversed
      // space and is only an approximation of the forward distance
      // (paper Section 4.3).
      result.distance_exact =
          prefix_wins || measure_->ReversalPreservesDistance();
      h = i + 1;
      ++result.stats.splits;
    }
  }
  return result;
}

SearchResult PssSearch::PrefixSuffixScanBounded(
    similarity::PrefixEvaluator& eval, std::span<const geo::Point> data,
    std::span<const geo::Point> query, double bailout) const {
  // PSS cannot soundly use the caller's bailout: any future candidate below
  // the running best — even one still above the bailout — triggers a split
  // that restarts the evaluator chain, whose subsequent candidates are not
  // bounded by anything known here. The scan therefore prunes only on its
  // own finality condition below, which is bailout-independent and exact.
  (void)bailout;
  SearchResult result;
  const int n = static_cast<int>(data.size());

  std::vector<double> suffix =
      similarity::ComputeSuffixDistances(*measure_, data, query);
  result.stats.start_calls += 1;
  result.stats.extend_calls += n - 1;

  // suffix_min_from[i] = min over j >= i of suffix[j]; sentinel +inf past
  // the end. Lets the scan prove that no future suffix candidate can
  // improve the answer.
  std::vector<double> suffix_min_from(static_cast<size_t>(n) + 1,
                                      std::numeric_limits<double>::infinity());
  for (int i = n; i-- > 0;) {
    suffix_min_from[static_cast<size_t>(i)] =
        std::min(suffix[static_cast<size_t>(i)],
                 suffix_min_from[static_cast<size_t>(i) + 1]);
  }

  int h = 0;  // Start of the current segment.
  for (int i = 0; i < n; ++i) {
    double pre = (i == h) ? eval.Start(data[static_cast<size_t>(i)])
                          : eval.Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    double suf = suffix[static_cast<size_t>(i)];
    result.stats.candidates += 2;
    double cand = std::min(pre, suf);
    if (cand < result.distance) {
      result.distance = cand;
      bool prefix_wins = pre <= suf;
      result.best =
          prefix_wins ? geo::SubRange(h, i) : geo::SubRange(i, n - 1);
      result.distance_exact =
          prefix_wins || measure_->ReversalPreservesDistance();
      h = i + 1;
      ++result.stats.splits;
    }
    // Early exit when nothing ahead can matter. Only legal while the
    // evaluator state is live (h <= i: no restart pending), so that
    // ExtensionLowerBound() bounds every future prefix candidate; every
    // future suffix candidate is bounded by suffix_min_from. Once neither
    // side can go below the current best, no candidate can win OR trigger
    // a split (both require cand < result.distance), so the result is
    // final. Note the condition must compare against result.distance, NOT
    // the caller's bailout: a future candidate between the bailout and the
    // current best would still split and restart the evaluator, and the
    // post-split chain is unbounded by the current lower bound — it may
    // descend below the bailout, which an exit here would wrongly skip.
    if (h <= i && i + 1 < n) {
      double future_min =
          std::min(eval.ExtensionLowerBound(),
                   suffix_min_from[static_cast<size_t>(i) + 1]);
      if (future_min >= result.distance) {
        ++result.stats.abandoned;
        break;
      }
    }
  }
  return result;
}

PosSearch::PosSearch(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult PosSearch::DoSearch(std::span<const geo::Point> data,
                               std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SearchResult result;
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  int h = 0;
  for (int i = 0; i < n; ++i) {
    double pre = (i == h) ? eval->Start(data[static_cast<size_t>(i)])
                          : eval->Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    ++result.stats.candidates;
    if (pre < result.distance) {
      result.distance = pre;
      result.best = geo::SubRange(h, i);
      h = i + 1;
      ++result.stats.splits;
    }
  }
  return result;
}

PosDSearch::PosDSearch(const similarity::SimilarityMeasure* measure, int delay)
    : measure_(measure), delay_(delay) {
  SIMSUB_CHECK(measure != nullptr);
  SIMSUB_CHECK_GE(delay, 0);
}

SearchResult PosDSearch::DoSearch(std::span<const geo::Point> data,
                                std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SearchResult result;
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  int h = 0;
  int i = h;
  while (i < n) {
    double pre = (i == h) ? eval->Start(data[static_cast<size_t>(i)])
                          : eval->Extend(data[static_cast<size_t>(i)]);
    if (i == h) {
      ++result.stats.start_calls;
    } else {
      ++result.stats.extend_calls;
    }
    ++result.stats.candidates;
    if (pre < result.distance) {
      // Trigger: look ahead up to `delay_` more points and split where the
      // prefix is the most similar among these D + 1 positions.
      double best_d = pre;
      int best_i = i;
      // 64-bit sum: delay_ is wire-controlled (full-range i32), so
      // `i + delay_` in int is UB at the top of that range.
      int lookahead_end = static_cast<int>(
          std::min<int64_t>(n - 1, static_cast<int64_t>(i) + delay_));
      for (int j = i + 1; j <= lookahead_end; ++j) {
        double d = eval->Extend(data[static_cast<size_t>(j)]);
        ++result.stats.extend_calls;
        ++result.stats.candidates;
        if (d < best_d) {
          best_d = d;
          best_i = j;
        }
      }
      result.distance = best_d;
      result.best = geo::SubRange(h, best_i);
      h = best_i + 1;
      ++result.stats.splits;
      // Points after best_i within the lookahead window are re-scanned as
      // part of the new segment (the paper notes the in-practice cost is
      // "slightly higher" while the asymptotic complexity is unchanged).
      i = h;
    } else {
      ++i;
    }
  }
  return result;
}

}  // namespace simsub::algo
