#include "algo/ucr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "algo/lower_bounds.h"
#include "geo/mbr.h"
#include "similarity/dtw.h"
#include "util/logging.h"

namespace simsub::algo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Banded DTW between candidate and query (both length m) that abandons as
// soon as (row minimum + LB_Keogh suffix remainder) exceeds the threshold.
// lb_suffix[l] = sum of per-position envelope distances for positions > l.
double BandedDtwWithCascadeAbandon(std::span<const geo::Point> candidate,
                                   std::span<const geo::Point> query, int w,
                                   const std::vector<double>& lb_suffix,
                                   double threshold) {
  const int m = static_cast<int>(query.size());
  std::vector<double> prev(static_cast<size_t>(m), kInf);
  std::vector<double> cur(static_cast<size_t>(m), kInf);
  for (int l = 0; l < m; ++l) {
    std::fill(cur.begin(), cur.end(), kInf);
    int j_lo = std::max(0, l - w);
    int j_hi = std::min(m - 1, l + w);
    double row_min = kInf;
    for (int j = j_lo; j <= j_hi; ++j) {
      double d = geo::Distance(candidate[static_cast<size_t>(l)],
                               query[static_cast<size_t>(j)]);
      if (l == 0 && j == 0) {
        cur[0] = d;
      } else {
        double best = kInf;
        if (l > 0) best = std::min(best, prev[static_cast<size_t>(j)]);
        if (j > 0) {
          best = std::min(best, cur[static_cast<size_t>(j) - 1]);
          if (l > 0) best = std::min(best, prev[static_cast<size_t>(j) - 1]);
        }
        if (best == kInf) continue;
        cur[static_cast<size_t>(j)] = d + best;
      }
      row_min = std::min(row_min, cur[static_cast<size_t>(j)]);
    }
    // "Earlier early abandoning": the unprocessed candidate suffix will
    // contribute at least lb_suffix[l].
    if (row_min + lb_suffix[static_cast<size_t>(l)] > threshold) return kInf;
    prev.swap(cur);
  }
  return prev.back();
}

}  // namespace

UcrSearch::UcrSearch(double band_fraction) : band_fraction_(band_fraction) {
  SIMSUB_CHECK_GE(band_fraction, 0.0);
}

SearchResult UcrSearch::DoSearch(std::span<const geo::Point> data,
                               std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  const int n = static_cast<int>(data.size());
  const int m = static_cast<int>(query.size());
  SearchResult result;

  if (n < m) {
    // No length-m subsequence exists; return the whole trajectory (the only
    // sensible answer for a fixed-length matcher).
    result.best = geo::SubRange(0, n - 1);
    result.distance = similarity::DtwDistance(data, query);
    return result;
  }

  const int w = std::min(
      m, static_cast<int>(std::floor(band_fraction_ * static_cast<double>(m))));

  // Envelopes around query positions (for LB_Keogh) and around data
  // positions (for the reversed bound). Data envelopes use the global
  // sliding window, a superset of the candidate-local window, so the bound
  // stays valid for every candidate offset.
  std::vector<geo::Mbr> query_env = BuildMbrEnvelopes(query, w);
  std::vector<geo::Mbr> data_env = BuildMbrEnvelopes(data, w);

  // Reordering: positions sorted by descending distance of the query point
  // from the query centroid (see header).
  geo::Point centroid(0.0, 0.0);
  for (const geo::Point& q : query) {
    centroid.x += q.x;
    centroid.y += q.y;
  }
  centroid.x /= m;
  centroid.y /= m;
  std::vector<int> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return geo::SquaredDistance(query[static_cast<size_t>(a)], centroid) >
           geo::SquaredDistance(query[static_cast<size_t>(b)], centroid);
  });

  std::vector<double> pos_lb(static_cast<size_t>(m), 0.0);
  std::vector<double> lb_suffix(static_cast<size_t>(m), 0.0);

  double bsf = kInf;
  for (int s = 0; s + m <= n; ++s) {
    ++result.stats.extend_calls;  // start offsets enumerated
    std::span<const geo::Point> cand = data.subspan(static_cast<size_t>(s),
                                                    static_cast<size_t>(m));
    // --- Cascade stage 1: LB_KimFL (O(1)). --------------------------------
    double lb_kim = geo::Distance(cand[0], query[0]) +
                    geo::Distance(cand[static_cast<size_t>(m) - 1],
                                  query[static_cast<size_t>(m) - 1]);
    if (lb_kim > bsf) continue;

    // --- Stage 2: LB_Keogh with reordered early abandoning. ---------------
    std::fill(pos_lb.begin(), pos_lb.end(), 0.0);
    double lb_keogh = 0.0;
    bool pruned = false;
    for (int idx : order) {
      double d = query_env[static_cast<size_t>(idx)].Distance(
          cand[static_cast<size_t>(idx)]);
      pos_lb[static_cast<size_t>(idx)] = d;
      lb_keogh += d;
      if (lb_keogh > bsf) {
        pruned = true;
        break;
      }
    }
    if (pruned) continue;

    // --- Stage 3: reversed LB_Keogh; keep the tighter bound. --------------
    double lb_rev = 0.0;
    for (int i = 0; i < m && lb_rev <= bsf; ++i) {
      lb_rev += data_env[static_cast<size_t>(s + i)].Distance(
          query[static_cast<size_t>(i)]);
    }
    if (lb_rev > bsf) continue;
    // Note: stage 4 folds in the stage-2 per-position decomposition; the
    // reversed bound only serves as an extra pruning test above.

    // --- Stage 4: banded DTW with cascading early abandoning. -------------
    double acc = 0.0;
    for (int l = m - 1; l >= 0; --l) {
      lb_suffix[static_cast<size_t>(l)] = acc;
      acc += pos_lb[static_cast<size_t>(l)];
    }
    double d = BandedDtwWithCascadeAbandon(cand, query, w, lb_suffix, bsf);
    ++result.stats.candidates;
    if (d < bsf) {
      bsf = d;
      result.best = geo::SubRange(s, s + m - 1);
      result.distance = d;
    }
  }

  if (result.distance == kInf) {
    // Pathological: everything pruned by an infinite-band corner case;
    // fall back to the first candidate.
    result.best = geo::SubRange(0, m - 1);
    result.distance = similarity::DtwDistance(
        data.subspan(0, static_cast<size_t>(m)), query);
  }
  return result;
}

}  // namespace simsub::algo
