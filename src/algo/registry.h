// Name-based construction of the SimSub search algorithms, the counterpart
// of similarity::MakeMeasure: a serving request names its algorithm
// ("exacts", "pss", "rls-skip", ...) and the factory builds the
// SubtrajectorySearch, so a declarative service::QuerySpec round-trips from
// CLI flags without any per-algorithm wiring at the call site.
#ifndef SIMSUB_ALGO_REGISTRY_H_
#define SIMSUB_ALGO_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/search.h"
#include "rl/trainer.h"
#include "similarity/measure.h"
#include "util/status.h"

namespace simsub::algo {

/// Tuning knobs for algorithms that take parameters. Defaults follow the
/// paper's experiment settings.
struct SearchOptions {
  int sizes_xi = 5;        ///< SizeS size margin (paper Section 6.1).
  int posd_delay = 5;      ///< POS-D split delay D.
  int random_s_samples = 100;  ///< Random-S sampled subtrajectories.
  uint64_t random_s_seed = 42;
  /// Sakoe-Chiba band (fraction of the query length) for "spring"/"ucr".
  double band_fraction = 1.0;
  /// Trained policy for "rls"/"rls-skip": either an in-memory policy (takes
  /// precedence) or a path readable by rl::LoadPolicyFromFile. One of the
  /// two is required for the RLS names; both empty is InvalidArgument.
  const rl::TrainedPolicy* rls_policy = nullptr;
  std::string rls_policy_path;
};

/// Builds a search by name: "exacts" (alias "exact"), "sizes", "pss",
/// "pos", "pos-d", "simtra", "random-s", "spring", "ucr", "rls",
/// "rls-skip". `measure` must outlive the returned search. Returns
/// InvalidArgument for unknown names and invalid parameters (null measure,
/// negative margins, missing RLS policy, a policy whose skip count
/// contradicts the rls/rls-skip name, or a non-DTW measure for the
/// DTW-hardcoded "spring"/"ucr").
///
/// Thread safety: every returned search is immutable and safe to share
/// across threads except "random-s", which draws from an internal RNG
/// stream — give each thread (or each request) its own instance.
[[nodiscard]] util::Result<std::unique_ptr<SubtrajectorySearch>> MakeSearch(
    const std::string& name, const similarity::SimilarityMeasure* measure,
    const SearchOptions& options = {});

/// Names accepted by MakeSearch, for --help text (aliases excluded).
std::vector<std::string> BuiltinSearchNames();

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_REGISTRY_H_
