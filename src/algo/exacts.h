// ExactS (paper Algorithm 1): exhaustive enumeration of all n(n+1)/2
// subtrajectories with incremental similarity computation.
// Complexity O(n * (Phi_ini + n * Phi_inc)).
#ifndef SIMSUB_ALGO_EXACTS_H_
#define SIMSUB_ALGO_EXACTS_H_

#include <functional>

#include "algo/search.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// Exact SimSub solver for an abstract similarity measurement.
class ExactS : public SubtrajectorySearch {
 public:
  explicit ExactS(const similarity::SimilarityMeasure* measure);

  std::string name() const override { return "ExactS"; }

  const similarity::SimilarityMeasure* measure() const override {
    return measure_;
  }

  /// Visits every subtrajectory range and its distance in the same
  /// enumeration order as Search (rows of fixed start, growing end). Used by
  /// the evaluation ranker and by the top-k machinery.
  void EnumerateAll(
      std::span<const geo::Point> data, std::span<const geo::Point> query,
      const std::function<void(geo::SubRange, double)>& visit) const;

 protected:
  // (see SubtrajectorySearch::Search)
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

  SearchResult DoSearchCached(
      std::span<const geo::Point> data, std::span<const geo::Point> query,
      similarity::EvaluatorCache& scratch) const override;

  SearchResult DoSearchBounded(std::span<const geo::Point> data,
                               std::span<const geo::Point> query,
                               similarity::EvaluatorCache* scratch,
                               double bailout) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_EXACTS_H_
