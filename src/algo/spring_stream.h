// Streaming SPRING (Sakurai, Faloutsos & Yamamuro, ICDE 2007): the original
// algorithm is designed for monitoring a *stream* — each arriving point
// costs O(m) and the matcher reports the best DTW subsequence seen so far.
// This class exposes that streaming interface (the batch SpringSearch in
// spring.h wraps the same recurrence for stored trajectories).
#ifndef SIMSUB_ALGO_SPRING_STREAM_H_
#define SIMSUB_ALGO_SPRING_STREAM_H_

#include <limits>
#include <span>
#include <vector>

#include "geo/point.h"
#include "geo/trajectory.h"

namespace simsub::algo {

/// Online DTW subsequence matcher over an unbounded point stream.
///
/// Reported ranges are *stream* positions (64-bit): a long-lived monitor
/// keeps counting past 2^31 points without wrapping. `start_position`
/// seats the matcher at an arbitrary stream offset, so a monitor resuming
/// from a checkpoint (or a sealed segment boundary) reports positions in
/// the original stream's coordinates.
class SpringStream {
 public:
  /// `query` must outlive the matcher. The first pushed point is stream
  /// position `start_position`.
  explicit SpringStream(std::span<const geo::Point> query,
                        int64_t start_position = 0);

  /// Feeds the next stream point; O(|query|).
  void Push(const geo::Point& p);

  /// Number of points consumed so far.
  int64_t size() const { return count_ - origin_; }

  /// Best match ending at or before the current point: stream indices
  /// [start, end] (0-based) and its DTW distance. Valid once size() >= 1.
  geo::SubRange best_range() const { return best_range_; }
  double best_distance() const { return best_distance_; }

  /// DTW distance of the best warping path ending exactly at the current
  /// point (the last STWM column) — the paper's "report when dist <= eps"
  /// stream-monitoring hook.
  double current_tail_distance() const;

  /// Stream range of that path: [match start, current point].
  geo::SubRange current_tail_range() const;

  /// Resets to the empty stream (positions restart at `start_position`).
  void Reset();

 private:
  std::span<const geo::Point> query_;
  std::vector<double> d_;       // STWM costs for the current row
  std::vector<int64_t> s_;      // match start per cell
  std::vector<double> d_prev_;
  std::vector<int64_t> s_prev_;
  int64_t origin_ = 0;  // stream position of the first pushed point
  int64_t count_ = 0;   // stream position of the NEXT point to push
  double best_distance_ = std::numeric_limits<double>::infinity();
  geo::SubRange best_range_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_SPRING_STREAM_H_
