#include "algo/topk.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace simsub::algo {

namespace {

bool WorseThan(const RankedCandidate& a, const RankedCandidate& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  if (a.range.start != b.range.start) return a.range.start < b.range.start;
  return a.range.end < b.range.end;
}

}  // namespace

TopKCollector::TopKCollector(int k) : k_(k) {
  SIMSUB_CHECK_GT(k, 0);
  heap_.reserve(static_cast<size_t>(k));
}

double TopKCollector::worst() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.front().distance;
}

void TopKCollector::Offer(geo::SubRange range, double distance) {
  RankedCandidate cand{range, distance};
  if (static_cast<int>(heap_.size()) < k_) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end(), WorseThan);
    return;
  }
  if (distance >= heap_.front().distance) return;
  std::pop_heap(heap_.begin(), heap_.end(), WorseThan);
  heap_.back() = cand;
  std::push_heap(heap_.begin(), heap_.end(), WorseThan);
}

std::vector<RankedCandidate> TopKCollector::Sorted() const {
  std::vector<RankedCandidate> out = heap_;
  std::sort(out.begin(), out.end(), WorseThan);
  return out;
}

std::vector<RankedCandidate> TopKExact(
    const similarity::SimilarityMeasure& measure,
    std::span<const geo::Point> data, std::span<const geo::Point> query,
    int k, int min_size) {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SIMSUB_CHECK_GE(min_size, 1);
  const int n = static_cast<int>(data.size());
  TopKCollector collector(k);
  auto eval = measure.NewEvaluator(query);
  for (int i = 0; i < n; ++i) {
    double d = eval->Start(data[static_cast<size_t>(i)]);
    if (min_size <= 1) collector.Offer(geo::SubRange(i, i), d);
    for (int j = i + 1; j < n; ++j) {
      d = eval->Extend(data[static_cast<size_t>(j)]);
      if (j - i + 1 >= min_size) collector.Offer(geo::SubRange(i, j), d);
    }
  }
  return collector.Sorted();
}

}  // namespace simsub::algo
