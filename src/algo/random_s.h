// Random-S (paper Section 6.1): samples a fixed number of subtrajectories
// uniformly at random and returns the most similar one. Each sample is
// scored from scratch — the sampled ranges share no common start, so the
// incremental trick of ExactS does not apply (this is exactly why the paper
// finds Random-S slow at useful sample sizes).
#ifndef SIMSUB_ALGO_RANDOM_S_H_
#define SIMSUB_ALGO_RANDOM_S_H_

#include "algo/search.h"
#include "similarity/measure.h"
#include "util/random.h"

namespace simsub::algo {

/// Uniform random sampling baseline.
class RandomSSearch : public SubtrajectorySearch {
 public:
  RandomSSearch(const similarity::SimilarityMeasure* measure, int sample_size,
                uint64_t seed);

  std::string name() const override { return "Random-S"; }

  int sample_size() const { return sample_size_; }

  // Note: Search() is not thread-safe — it draws from an internal
  // deterministic stream.

 protected:
  // (see SubtrajectorySearch::Search)
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
  int sample_size_;
  mutable util::Rng rng_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_RANDOM_S_H_
