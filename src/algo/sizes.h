// SizeS (paper Section 4.2): enumerate only subtrajectories whose size is in
// [m - xi, m + xi], following the subsequence-matching practice of fixing
// candidate lengths near the query length. Complexity
// O(n * (Phi_ini + (m + xi) * Phi_inc)); xi trades efficiency for quality
// and SizeS can be arbitrarily bad in the worst case (paper Appendix A).
#ifndef SIMSUB_ALGO_SIZES_H_
#define SIMSUB_ALGO_SIZES_H_

#include "algo/search.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// Size-restricted approximate SimSub solver.
class SizeS : public SubtrajectorySearch {
 public:
  /// `xi` is the soft margin around the query size (paper default: 5).
  SizeS(const similarity::SimilarityMeasure* measure, int xi);

  std::string name() const override { return "SizeS"; }

  int xi() const { return xi_; }

  const similarity::SimilarityMeasure* measure() const override {
    return measure_;
  }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

  SearchResult DoSearchCached(
      std::span<const geo::Point> data, std::span<const geo::Point> query,
      similarity::EvaluatorCache& scratch) const override;

  SearchResult DoSearchBounded(std::span<const geo::Point> data,
                               std::span<const geo::Point> query,
                               similarity::EvaluatorCache* scratch,
                               double bailout) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
  int xi_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_SIZES_H_
