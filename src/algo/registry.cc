#include "algo/registry.h"

#include <utility>

#include "algo/exacts.h"
#include "algo/random_s.h"
#include "algo/rls.h"
#include "algo/simtra.h"
#include "algo/sizes.h"
#include "algo/splitting.h"
#include "algo/spring.h"
#include "algo/ucr.h"
#include "rl/policy_io.h"

namespace simsub::algo {

namespace {

using util::Result;
using util::Status;

Result<std::unique_ptr<SubtrajectorySearch>> MakeRls(
    const std::string& name, const similarity::SimilarityMeasure* measure,
    const SearchOptions& options) {
  rl::TrainedPolicy policy;
  if (options.rls_policy != nullptr) {
    policy = *options.rls_policy;
  } else if (!options.rls_policy_path.empty()) {
    auto loaded = rl::LoadPolicyFromFile(options.rls_policy_path);
    if (!loaded.ok()) return loaded.status();
    policy = std::move(*loaded);
  } else {
    return Status::InvalidArgument(
        name + " requires a trained policy (SearchOptions::rls_policy or "
               "rls_policy_path)");
  }
  const bool wants_skip = name == "rls-skip";
  if (wants_skip && policy.env_options.skip_count <= 0) {
    return Status::InvalidArgument(
        "rls-skip requires a policy trained with skip actions "
        "(skip_count > 0); this policy has none");
  }
  if (!wants_skip && policy.env_options.skip_count > 0) {
    return Status::InvalidArgument(
        "rls requires a plain policy (skip_count == 0); this policy was "
        "trained with skip actions — name it rls-skip");
  }
  return std::unique_ptr<SubtrajectorySearch>(
      new RlsSearch(measure, std::move(policy)));
}

}  // namespace

Result<std::unique_ptr<SubtrajectorySearch>> MakeSearch(
    const std::string& name, const similarity::SimilarityMeasure* measure,
    const SearchOptions& options) {
  if (measure == nullptr) {
    return Status::InvalidArgument("MakeSearch(\"" + name +
                                   "\"): measure must not be null");
  }
  if (name == "exacts" || name == "exact") {
    return std::unique_ptr<SubtrajectorySearch>(new ExactS(measure));
  }
  if (name == "sizes") {
    if (options.sizes_xi < 0) {
      return Status::InvalidArgument(
          "sizes: xi must be >= 0, got " + std::to_string(options.sizes_xi));
    }
    return std::unique_ptr<SubtrajectorySearch>(
        new SizeS(measure, options.sizes_xi));
  }
  if (name == "pss") {
    return std::unique_ptr<SubtrajectorySearch>(new PssSearch(measure));
  }
  if (name == "pos") {
    return std::unique_ptr<SubtrajectorySearch>(new PosSearch(measure));
  }
  if (name == "pos-d") {
    if (options.posd_delay < 0) {
      return Status::InvalidArgument("pos-d: delay must be >= 0, got " +
                                     std::to_string(options.posd_delay));
    }
    return std::unique_ptr<SubtrajectorySearch>(
        new PosDSearch(measure, options.posd_delay));
  }
  if (name == "simtra") {
    return std::unique_ptr<SubtrajectorySearch>(new SimTraSearch(measure));
  }
  if (name == "random-s") {
    if (options.random_s_samples <= 0) {
      return Status::InvalidArgument(
          "random-s: samples must be > 0, got " +
          std::to_string(options.random_s_samples));
    }
    return std::unique_ptr<SubtrajectorySearch>(new RandomSSearch(
        measure, options.random_s_samples, options.random_s_seed));
  }
  if (name == "spring" || name == "ucr") {
    // Both run the DTW recurrence directly; silently ignoring a different
    // requested measure would serve wrong answers.
    if (measure->name() != "dtw") {
      return Status::InvalidArgument(name + " is DTW-only; requested measure "
                                     "is " + measure->name());
    }
    // Negated form so NaN fails too: both `NaN <= 0` and `NaN > 1` are
    // false, which let a NaN from a hostile wire request through the old
    // two-sided check and into the band arithmetic.
    if (!(options.band_fraction > 0.0 && options.band_fraction <= 1.0)) {
      return Status::InvalidArgument(
          name + ": band_fraction must be in (0, 1], got " +
          std::to_string(options.band_fraction));
    }
    if (name == "spring") {
      return std::unique_ptr<SubtrajectorySearch>(
          new SpringSearch(options.band_fraction));
    }
    return std::unique_ptr<SubtrajectorySearch>(
        new UcrSearch(options.band_fraction));
  }
  if (name == "rls" || name == "rls-skip") {
    return MakeRls(name, measure, options);
  }
  return Status::InvalidArgument("unknown search algorithm: " + name);
}

std::vector<std::string> BuiltinSearchNames() {
  return {"exacts", "sizes",  "pss",    "pos", "pos-d",   "simtra",
          "random-s", "spring", "ucr", "rls", "rls-skip"};
}

}  // namespace simsub::algo
