// The SubtrajectorySearch interface: every SimSub algorithm (Problem 1 of
// the paper) maps a (data trajectory, query trajectory) pair to the
// subtrajectory of the data trajectory most similar to the query.
#ifndef SIMSUB_ALGO_SEARCH_H_
#define SIMSUB_ALGO_SEARCH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "geo/point.h"
#include "geo/trajectory.h"

namespace simsub::similarity {
class EvaluatorCache;
class SimilarityMeasure;
}  // namespace simsub::similarity

namespace simsub::algo {

/// Instrumentation counters reported by every search.
struct SearchStats {
  /// Number of candidate subtrajectories whose distance was examined.
  int64_t candidates = 0;
  /// Number of split operations performed (splitting-based algorithms).
  int64_t splits = 0;
  /// Number of points skipped without state maintenance (RLS-Skip).
  int64_t points_skipped = 0;
  /// Number of incremental similarity updates (Phi_inc invocations).
  int64_t extend_calls = 0;
  /// Number of from-scratch similarity initializations (Phi_ini).
  int64_t start_calls = 0;
  /// Number of start points whose extension scan was abandoned mid-DP
  /// because the evaluator's lower bound exceeded the bailout threshold.
  int64_t abandoned = 0;
};

/// Outcome of one SimSub search.
struct SearchResult {
  /// The returned subtrajectory T[best.start .. best.end], 0-based inclusive.
  geo::SubRange best;
  /// Dissimilarity of the returned subtrajectory to the query. For RLS-Skip
  /// this is the simplified-prefix estimate (distance_exact == false); the
  /// evaluation harness re-scores returned ranges with the true measure.
  double distance = std::numeric_limits<double>::infinity();
  bool distance_exact = true;
  SearchStats stats;
};

/// Abstract SimSub solver. Implementations are immutable after construction
/// and safe to reuse across many (data, query) pairs.
class SubtrajectorySearch {
 public:
  virtual ~SubtrajectorySearch() = default;

  /// Algorithm identifier as used in the paper ("ExactS", "PSS", ...).
  virtual std::string name() const = 0;

  /// Finds (an approximation of) argmin over subtrajectories of `data` of
  /// the dissimilarity to `query`. Both spans must be non-empty.
  SearchResult Search(std::span<const geo::Point> data,
                      std::span<const geo::Point> query) const {
    return DoSearch(data, query);
  }

  /// Convenience overload on whole trajectories.
  SearchResult Search(const geo::Trajectory& data,
                      const geo::Trajectory& query) const {
    return DoSearch(data.View(), query.View());
  }

  /// Like Search, but may reuse evaluator scratch from `scratch` (a
  /// per-worker, single-threaded cache) instead of allocating fresh DP rows
  /// per call. Algorithms without a cached path silently fall back to the
  /// plain search; a null cache is equivalent to Search(data, query).
  SearchResult Search(std::span<const geo::Point> data,
                      std::span<const geo::Point> query,
                      similarity::EvaluatorCache* scratch) const {
    return scratch != nullptr ? DoSearchCached(data, query, *scratch)
                              : DoSearch(data, query);
  }

  /// Pruned search: candidates provably worse than `bailout` may be skipped
  /// without evaluation (via similarity::PrefixEvaluator's
  /// ExtensionLowerBound early-abandoning hook). The contract on the
  /// returned distance: it is EITHER the algorithm's exact answer (always
  /// when <= bailout) OR some value > bailout standing in for an answer
  /// that cannot matter to the caller — so an engine maintaining a best-kth
  /// threshold gets bit-identical top-k either way. +infinity bailout
  /// degrades to Search(data, query, scratch) plus intra-trajectory
  /// best-so-far abandonment, which never changes the result.
  SearchResult Search(std::span<const geo::Point> data,
                      std::span<const geo::Point> query,
                      similarity::EvaluatorCache* scratch,
                      double bailout) const {
    return DoSearchBounded(data, query, scratch, bailout);
  }

  /// The similarity measure this search evaluates candidates with, when it
  /// is measure-driven (ExactS, SizeS, the splitting family); null for
  /// algorithms without one single measure (e.g. learned policies over
  /// mixed signals). The engine's lower-bound cascade keys on the measure's
  /// aggregation() to decide which MBR bounds are sound.
  virtual const similarity::SimilarityMeasure* measure() const {
    return nullptr;
  }

 protected:
  /// Implementation hook (non-virtual interface: both public Search
  /// overloads dispatch here, so derived classes never hide one of them).
  virtual SearchResult DoSearch(std::span<const geo::Point> data,
                                std::span<const geo::Point> query) const = 0;

  /// Scratch-reusing hook; the default ignores the cache.
  virtual SearchResult DoSearchCached(std::span<const geo::Point> data,
                                      std::span<const geo::Point> query,
                                      similarity::EvaluatorCache&) const {
    return DoSearch(data, query);
  }

  /// Bailout-threshold hook; the default ignores the threshold (always
  /// correct: evaluating more candidates than necessary never changes the
  /// returned optimum).
  virtual SearchResult DoSearchBounded(std::span<const geo::Point> data,
                                       std::span<const geo::Point> query,
                                       similarity::EvaluatorCache* scratch,
                                       double bailout) const {
    (void)bailout;
    return scratch != nullptr ? DoSearchCached(data, query, *scratch)
                              : DoSearch(data, query);
  }
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_SEARCH_H_
