#include "algo/sizes.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>

#include "util/logging.h"

namespace simsub::algo {

namespace {

// Size-window scan shared by the plain and scratch-reusing entry points.
SearchResult SizeScan(similarity::PrefixEvaluator& eval,
                      std::span<const geo::Point> data,
                      std::span<const geo::Point> query, int xi) {
  SearchResult result;
  const int n = static_cast<int>(data.size());
  const int m = static_cast<int>(query.size());
  // Clamp the window so at least one candidate is always admissible, even
  // when the data trajectory is shorter than m - xi.
  const int min_size = std::max(1, std::min(m - xi, n));
  // 64-bit sum clamped to n (no candidate exceeds the data length anyway):
  // xi comes off the wire as a full-range i32, and `m + xi` in int is UB at
  // the top of that range.
  const int max_size =
      static_cast<int>(std::min<int64_t>(n, static_cast<int64_t>(m) + xi));
  for (int i = 0; i < n; ++i) {
    if (i + min_size > n) break;  // No admissible subtrajectory starts here.
    double d = eval.Start(data[static_cast<size_t>(i)]);
    ++result.stats.start_calls;
    int size = 1;
    if (size >= min_size) {
      ++result.stats.candidates;
      if (d < result.distance) {
        result.distance = d;
        result.best = geo::SubRange(i, i);
      }
    }
    for (int j = i + 1; j < n && size < max_size; ++j) {
      d = eval.Extend(data[static_cast<size_t>(j)]);
      ++result.stats.extend_calls;
      ++size;
      if (size >= min_size) {
        ++result.stats.candidates;
        if (d < result.distance) {
          result.distance = d;
          result.best = geo::SubRange(i, j);
        }
      }
    }
  }
  return result;
}

// Pruned size-window scan: a start point's window is abandoned once the
// evaluator's lower bound exceeds min(bailout, best-so-far) — every
// remaining candidate of the window (admissible or not) extends the current
// state, so all are provably worse (see Search(.., bailout) contract).
SearchResult SizeScanBounded(similarity::PrefixEvaluator& eval,
                             std::span<const geo::Point> data,
                             std::span<const geo::Point> query, int xi,
                             double bailout) {
  SearchResult result;
  const int n = static_cast<int>(data.size());
  const int m = static_cast<int>(query.size());
  const int min_size = std::max(1, std::min(m - xi, n));
  // 64-bit sum clamped to n (no candidate exceeds the data length anyway):
  // xi comes off the wire as a full-range i32, and `m + xi` in int is UB at
  // the top of that range.
  const int max_size =
      static_cast<int>(std::min<int64_t>(n, static_cast<int64_t>(m) + xi));
  for (int i = 0; i < n; ++i) {
    if (i + min_size > n) break;  // No admissible subtrajectory starts here.
    double d = eval.Start(data[static_cast<size_t>(i)]);
    ++result.stats.start_calls;
    int size = 1;
    if (size >= min_size) {
      ++result.stats.candidates;
      if (d < result.distance) {
        result.distance = d;
        result.best = geo::SubRange(i, i);
      }
    }
    for (int j = i + 1; j < n && size < max_size; ++j) {
      if (eval.ExtensionLowerBound() > std::min(bailout, result.distance)) {
        ++result.stats.abandoned;
        break;
      }
      d = eval.Extend(data[static_cast<size_t>(j)]);
      ++result.stats.extend_calls;
      ++size;
      if (size >= min_size) {
        ++result.stats.candidates;
        if (d < result.distance) {
          result.distance = d;
          result.best = geo::SubRange(i, j);
        }
      }
    }
  }
  return result;
}

}  // namespace

SizeS::SizeS(const similarity::SimilarityMeasure* measure, int xi)
    : measure_(measure), xi_(xi) {
  SIMSUB_CHECK(measure != nullptr);
  SIMSUB_CHECK_GE(xi, 0);
}

SearchResult SizeS::DoSearch(std::span<const geo::Point> data,
                           std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  auto eval = measure_->NewEvaluator(query);
  return SizeScan(*eval, data, query, xi_);
}

SearchResult SizeS::DoSearchCached(std::span<const geo::Point> data,
                                   std::span<const geo::Point> query,
                                   similarity::EvaluatorCache& scratch) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  return SizeScan(*scratch.Acquire(*measure_, query), data, query, xi_);
}

SearchResult SizeS::DoSearchBounded(std::span<const geo::Point> data,
                                    std::span<const geo::Point> query,
                                    similarity::EvaluatorCache* scratch,
                                    double bailout) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  std::unique_ptr<similarity::PrefixEvaluator> owned;
  similarity::PrefixEvaluator* eval =
      similarity::AcquireEvaluator(*measure_, query, scratch, &owned);
  return SizeScanBounded(*eval, data, query, xi_, bailout);
}

}  // namespace simsub::algo
