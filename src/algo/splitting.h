// The three heuristic splitting-based algorithms of paper Section 4.3:
//   PSS   - Prefix-Suffix Search (Algorithm 2): greedy split whenever the
//           current prefix or suffix beats the best-known similarity.
//   POS   - Prefix-Only Search: PSS without the suffix component.
//   POS-D - Prefix-Only Search with Delay: defers the split for up to D
//           points and splits where the prefix was most similar.
// All run in O(n1 * Phi_ini + n * Phi_inc) with n1 = number of splits.
#ifndef SIMSUB_ALGO_SPLITTING_H_
#define SIMSUB_ALGO_SPLITTING_H_

#include "algo/search.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// Prefix-Suffix Search (paper Algorithm 2).
class PssSearch : public SubtrajectorySearch {
 public:
  explicit PssSearch(const similarity::SimilarityMeasure* measure);

  std::string name() const override { return "PSS"; }

  const similarity::SimilarityMeasure* measure() const override {
    return measure_;
  }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

  SearchResult DoSearchCached(
      std::span<const geo::Point> data, std::span<const geo::Point> query,
      similarity::EvaluatorCache& scratch) const override;

  SearchResult DoSearchBounded(std::span<const geo::Point> data,
                               std::span<const geo::Point> query,
                               similarity::EvaluatorCache* scratch,
                               double bailout) const override;

 private:
  SearchResult PrefixSuffixScan(similarity::PrefixEvaluator& eval,
                                std::span<const geo::Point> data,
                                std::span<const geo::Point> query) const;

  SearchResult PrefixSuffixScanBounded(similarity::PrefixEvaluator& eval,
                                       std::span<const geo::Point> data,
                                       std::span<const geo::Point> query,
                                       double bailout) const;

  const similarity::SimilarityMeasure* measure_;
};

/// Prefix-Only Search.
class PosSearch : public SubtrajectorySearch {
 public:
  explicit PosSearch(const similarity::SimilarityMeasure* measure);

  std::string name() const override { return "POS"; }

  const similarity::SimilarityMeasure* measure() const override {
    return measure_;
  }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
};

/// Prefix-Only Search with Delay.
class PosDSearch : public SubtrajectorySearch {
 public:
  /// `delay` is the paper's D parameter (default 5 in the experiments).
  PosDSearch(const similarity::SimilarityMeasure* measure, int delay);

  std::string name() const override { return "POS-D"; }

  int delay() const { return delay_; }

  const similarity::SimilarityMeasure* measure() const override {
    return measure_;
  }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
  int delay_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_SPLITTING_H_
