// RLS and RLS-Skip (paper Sections 5.3-5.4): splitting-based search driven
// by a DQN policy learned over the trajectory-splitting MDP. The same class
// covers RLS (k = 0), RLS-Skip (k > 0) and RLS-Skip+ (suffix dropped),
// depending on the EnvOptions baked into the trained policy.
#ifndef SIMSUB_ALGO_RLS_H_
#define SIMSUB_ALGO_RLS_H_

#include <memory>
#include <string>

#include "algo/search.h"
#include "rl/env.h"
#include "rl/trainer.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// Reinforcement-learning based SimSub solver.
class RlsSearch : public SubtrajectorySearch {
 public:
  /// `policy` comes from rl::RlsTrainer::Train. The optional `name`
  /// overrides the automatic "RLS"/"RLS-Skip"/"RLS-Skip+" label.
  RlsSearch(const similarity::SimilarityMeasure* measure,
            rl::TrainedPolicy policy, std::string name = "");

  std::string name() const override { return name_; }

  const rl::EnvOptions& env_options() const { return policy_.env_options; }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:
  const similarity::SimilarityMeasure* measure_;
  rl::TrainedPolicy policy_;
  std::string name_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_RLS_H_
