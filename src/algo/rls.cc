#include "algo/rls.h"

#include <algorithm>

#include "util/logging.h"

namespace simsub::algo {

namespace {

std::string AutoName(const rl::EnvOptions& options) {
  if (options.skip_count == 0) return "RLS";
  return options.use_suffix ? "RLS-Skip" : "RLS-Skip+";
}

}  // namespace

RlsSearch::RlsSearch(const similarity::SimilarityMeasure* measure,
                     rl::TrainedPolicy policy, std::string name)
    : measure_(measure), policy_(std::move(policy)), name_(std::move(name)) {
  SIMSUB_CHECK(measure != nullptr);
  SIMSUB_CHECK(policy_.net != nullptr);
  if (name_.empty()) name_ = AutoName(policy_.env_options);
}

SearchResult RlsSearch::DoSearch(std::span<const geo::Point> data,
                               std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  rl::SplitEnv env(measure_, policy_.env_options);
  env.Reset(data, query);
  const nn::Mlp& net = *policy_.net;
  nn::Mlp::Cache cache;  // reused across all decisions of this search
  while (!env.done()) {
    const std::vector<double>& q = net.ForwardCached(env.state(), &cache);
    int action =
        static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
    env.Step(action);
  }
  SearchResult result;
  result.best = env.best_range();
  result.distance = env.best_distance();
  result.distance_exact = env.best_distance_exact();
  result.stats.candidates = env.points_scanned() *
                            (policy_.env_options.use_suffix ? 2 : 1);
  result.stats.splits = env.splits();
  result.stats.points_skipped = env.points_skipped();
  result.stats.start_calls = env.start_calls();
  result.stats.extend_calls = env.extend_calls();
  return result;
}

}  // namespace simsub::algo
