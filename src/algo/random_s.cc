#include "algo/random_s.h"

#include <cmath>

#include "util/logging.h"

namespace simsub::algo {

RandomSSearch::RandomSSearch(const similarity::SimilarityMeasure* measure,
                             int sample_size, uint64_t seed)
    : measure_(measure), sample_size_(sample_size), rng_(seed) {
  SIMSUB_CHECK(measure != nullptr);
  SIMSUB_CHECK_GT(sample_size, 0);
}

SearchResult RandomSSearch::DoSearch(std::span<const geo::Point> data,
                                   std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t total = n * (n + 1) / 2;
  SearchResult result;
  auto eval = measure_->NewEvaluator(query);
  for (int s = 0; s < sample_size_; ++s) {
    // Decode a uniform draw over the triangular range index space: ranges
    // are ordered (0,0), (0,1) ... (0,n-1), (1,1), ... so start row i owns
    // n - i consecutive indices.
    int64_t idx = rng_.UniformInt(0, total - 1);
    int64_t i = 0;
    int64_t row_size = n;
    while (idx >= row_size) {
      idx -= row_size;
      ++i;
      --row_size;
    }
    int64_t j = i + idx;
    // Score T[i..j] from scratch.
    double d = eval->Start(data[static_cast<size_t>(i)]);
    ++result.stats.start_calls;
    for (int64_t k = i + 1; k <= j; ++k) {
      d = eval->Extend(data[static_cast<size_t>(k)]);
      ++result.stats.extend_calls;
    }
    ++result.stats.candidates;
    if (d < result.distance) {
      result.distance = d;
      result.best = geo::SubRange(static_cast<int>(i), static_cast<int>(j));
    }
  }
  return result;
}

}  // namespace simsub::algo
