#include "algo/lower_bounds.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace simsub::algo {

std::vector<geo::Mbr> BuildMbrEnvelopes(std::span<const geo::Point> pts,
                                        int w) {
  const int n = static_cast<int>(pts.size());
  std::vector<geo::Mbr> env(static_cast<size_t>(n));
  auto slide = [&](auto key, bool want_max, auto assign) {
    std::vector<int> dq;  // indices, values monotonic
    int head = 0;
    // Window for i is [i-w, i+w]; advance right edge to i+w as i grows.
    int right = -1;
    for (int i = 0; i < n; ++i) {
      int hi = std::min(n - 1, i + w);
      while (right < hi) {
        ++right;
        double v = key(pts[static_cast<size_t>(right)]);
        while (static_cast<int>(dq.size()) > head) {
          double back = key(pts[static_cast<size_t>(dq.back())]);
          if ((want_max && back <= v) || (!want_max && back >= v)) {
            dq.pop_back();
          } else {
            break;
          }
        }
        dq.push_back(right);
      }
      int lo = std::max(0, i - w);
      while (head < static_cast<int>(dq.size()) &&
             dq[static_cast<size_t>(head)] < lo) {
        ++head;
      }
      assign(&env[static_cast<size_t>(i)],
             key(pts[static_cast<size_t>(dq[static_cast<size_t>(head)])]));
    }
  };
  slide([](const geo::Point& p) { return p.x; }, /*want_max=*/false,
        [](geo::Mbr* m, double v) { m->min_x = v; });
  slide([](const geo::Point& p) { return p.x; }, /*want_max=*/true,
        [](geo::Mbr* m, double v) { m->max_x = v; });
  slide([](const geo::Point& p) { return p.y; }, /*want_max=*/false,
        [](geo::Mbr* m, double v) { m->min_y = v; });
  slide([](const geo::Point& p) { return p.y; }, /*want_max=*/true,
        [](geo::Mbr* m, double v) { m->max_y = v; });
  return env;
}

namespace {

// Combines the two endpoint distances per the aggregation family. A
// single-point query has only one endpoint; counting it twice would break
// the kSum bound (one query point aligns once).
double CombineEndpoints(similarity::DistanceAggregation aggregation,
                        double d_front, double d_back, bool single_point) {
  switch (aggregation) {
    case similarity::DistanceAggregation::kSum:
      return single_point ? d_front : d_front + d_back;
    case similarity::DistanceAggregation::kMax:
      return std::max(d_front, d_back);
    case similarity::DistanceAggregation::kOther:
      break;
  }
  return 0.0;
}

}  // namespace

double MbrLowerBound(similarity::DistanceAggregation aggregation,
                     const geo::Mbr& data_mbr,
                     std::span<const geo::Point> query) {
  SIMSUB_CHECK(!query.empty());
  if (aggregation == similarity::DistanceAggregation::kOther) return 0.0;
  if (data_mbr.IsEmpty()) return 0.0;
  return CombineEndpoints(aggregation, data_mbr.Distance(query.front()),
                          data_mbr.Distance(query.back()),
                          query.size() == 1);
}

double NearestEndpointLowerBound(similarity::DistanceAggregation aggregation,
                                 geo::PointsView data,
                                 std::span<const geo::Point> query) {
  SIMSUB_CHECK(!query.empty());
  SIMSUB_CHECK(!data.empty());
  if (aggregation == similarity::DistanceAggregation::kOther) return 0.0;
  double d_front = std::sqrt(geo::MinSquaredDistance(query.front(), data));
  double d_back = query.size() == 1
                      ? d_front
                      : std::sqrt(geo::MinSquaredDistance(query.back(), data));
  return CombineEndpoints(aggregation, d_front, d_back, query.size() == 1);
}

}  // namespace simsub::algo
