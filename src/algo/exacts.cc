#include "algo/exacts.h"

#include "util/logging.h"

namespace simsub::algo {

ExactS::ExactS(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult ExactS::DoSearch(std::span<const geo::Point> data,
                            std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  SearchResult result;
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  for (int i = 0; i < n; ++i) {
    double d = eval->Start(data[static_cast<size_t>(i)]);
    ++result.stats.start_calls;
    ++result.stats.candidates;
    if (d < result.distance) {
      result.distance = d;
      result.best = geo::SubRange(i, i);
    }
    for (int j = i + 1; j < n; ++j) {
      d = eval->Extend(data[static_cast<size_t>(j)]);
      ++result.stats.extend_calls;
      ++result.stats.candidates;
      if (d < result.distance) {
        result.distance = d;
        result.best = geo::SubRange(i, j);
      }
    }
  }
  return result;
}

void ExactS::EnumerateAll(
    std::span<const geo::Point> data, std::span<const geo::Point> query,
    const std::function<void(geo::SubRange, double)>& visit) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  for (int i = 0; i < n; ++i) {
    visit(geo::SubRange(i, i), eval->Start(data[static_cast<size_t>(i)]));
    for (int j = i + 1; j < n; ++j) {
      visit(geo::SubRange(i, j), eval->Extend(data[static_cast<size_t>(j)]));
    }
  }
}

}  // namespace simsub::algo
