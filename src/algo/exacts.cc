#include "algo/exacts.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace simsub::algo {

namespace {

// The Algorithm 1 scan, factored out so the plain and the scratch-reusing
// entry points share one implementation.
SearchResult ExactScan(similarity::PrefixEvaluator& eval,
                       std::span<const geo::Point> data) {
  SearchResult result;
  const int n = static_cast<int>(data.size());
  for (int i = 0; i < n; ++i) {
    double d = eval.Start(data[static_cast<size_t>(i)]);
    ++result.stats.start_calls;
    ++result.stats.candidates;
    if (d < result.distance) {
      result.distance = d;
      result.best = geo::SubRange(i, i);
    }
    for (int j = i + 1; j < n; ++j) {
      d = eval.Extend(data[static_cast<size_t>(j)]);
      ++result.stats.extend_calls;
      ++result.stats.candidates;
      if (d < result.distance) {
        result.distance = d;
        result.best = geo::SubRange(i, j);
      }
    }
  }
  return result;
}

// The pruned scan: extensions of a start point are abandoned once the
// evaluator's lower bound exceeds min(bailout, best-so-far). Candidates
// skipped that way are strictly worse than the best-so-far (so the returned
// optimum and its first-in-enumeration-order range are unchanged) or
// strictly worse than the bailout (so the caller discards them anyway) —
// see SubtrajectorySearch::Search(.., bailout) for the contract.
SearchResult ExactScanBounded(similarity::PrefixEvaluator& eval,
                              std::span<const geo::Point> data,
                              double bailout) {
  SearchResult result;
  const int n = static_cast<int>(data.size());
  for (int i = 0; i < n; ++i) {
    double d = eval.Start(data[static_cast<size_t>(i)]);
    ++result.stats.start_calls;
    ++result.stats.candidates;
    if (d < result.distance) {
      result.distance = d;
      result.best = geo::SubRange(i, i);
    }
    for (int j = i + 1; j < n; ++j) {
      if (eval.ExtensionLowerBound() > std::min(bailout, result.distance)) {
        ++result.stats.abandoned;
        break;
      }
      d = eval.Extend(data[static_cast<size_t>(j)]);
      ++result.stats.extend_calls;
      ++result.stats.candidates;
      if (d < result.distance) {
        result.distance = d;
        result.best = geo::SubRange(i, j);
      }
    }
  }
  return result;
}

}  // namespace

ExactS::ExactS(const similarity::SimilarityMeasure* measure)
    : measure_(measure) {
  SIMSUB_CHECK(measure != nullptr);
}

SearchResult ExactS::DoSearch(std::span<const geo::Point> data,
                            std::span<const geo::Point> query) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  auto eval = measure_->NewEvaluator(query);
  return ExactScan(*eval, data);
}

SearchResult ExactS::DoSearchCached(std::span<const geo::Point> data,
                                    std::span<const geo::Point> query,
                                    similarity::EvaluatorCache& scratch) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  return ExactScan(*scratch.Acquire(*measure_, query), data);
}

SearchResult ExactS::DoSearchBounded(std::span<const geo::Point> data,
                                     std::span<const geo::Point> query,
                                     similarity::EvaluatorCache* scratch,
                                     double bailout) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  std::unique_ptr<similarity::PrefixEvaluator> owned;
  similarity::PrefixEvaluator* eval =
      similarity::AcquireEvaluator(*measure_, query, scratch, &owned);
  return ExactScanBounded(*eval, data, bailout);
}

void ExactS::EnumerateAll(
    std::span<const geo::Point> data, std::span<const geo::Point> query,
    const std::function<void(geo::SubRange, double)>& visit) const {
  SIMSUB_CHECK(!data.empty());
  SIMSUB_CHECK(!query.empty());
  const int n = static_cast<int>(data.size());
  auto eval = measure_->NewEvaluator(query);
  for (int i = 0; i < n; ++i) {
    visit(geo::SubRange(i, i), eval->Start(data[static_cast<size_t>(i)]));
    for (int j = i + 1; j < n; ++j) {
      visit(geo::SubRange(i, j), eval->Extend(data[static_cast<size_t>(j)]));
    }
  }
}

}  // namespace simsub::algo
