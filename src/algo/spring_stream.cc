#include "algo/spring_stream.h"

#include <algorithm>

#include "util/logging.h"

namespace simsub::algo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SpringStream::SpringStream(std::span<const geo::Point> query)
    : query_(query),
      d_(query.size(), kInf),
      s_(query.size(), 0),
      d_prev_(query.size(), kInf),
      s_prev_(query.size(), 0) {
  SIMSUB_CHECK(!query.empty());
}

void SpringStream::Reset() {
  std::fill(d_.begin(), d_.end(), kInf);
  std::fill(d_prev_.begin(), d_prev_.end(), kInf);
  count_ = 0;
  best_distance_ = kInf;
  best_range_ = geo::SubRange();
}

void SpringStream::Push(const geo::Point& p) {
  const size_t m = query_.size();
  d_.swap(d_prev_);
  s_.swap(s_prev_);
  int64_t row = count_;
  for (size_t j = 0; j < m; ++j) {
    double dist = geo::Distance(p, query_[j]);
    double best;
    int64_t start;
    if (j == 0) {
      // Star column: a match may begin at this stream position.
      best = 0.0;
      start = row;
    } else {
      best = d_[j - 1];
      start = s_[j - 1];
      if (d_prev_[j] < best) {
        best = d_prev_[j];
        start = s_prev_[j];
      }
      if (d_prev_[j - 1] < best) {
        best = d_prev_[j - 1];
        start = s_prev_[j - 1];
      }
    }
    if (best == kInf) {
      d_[j] = kInf;
      s_[j] = start;
    } else {
      d_[j] = dist + best;
      s_[j] = start;
    }
  }
  ++count_;
  if (d_.back() < best_distance_) {
    best_distance_ = d_.back();
    best_range_ = geo::SubRange(static_cast<int>(s_.back()),
                                static_cast<int>(row));
  }
}

double SpringStream::current_tail_distance() const {
  SIMSUB_CHECK_GT(count_, 0) << "no points pushed";
  return d_.back();
}

geo::SubRange SpringStream::current_tail_range() const {
  SIMSUB_CHECK_GT(count_, 0) << "no points pushed";
  return geo::SubRange(static_cast<int>(s_.back()),
                       static_cast<int>(count_ - 1));
}

}  // namespace simsub::algo
