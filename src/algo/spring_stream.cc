#include "algo/spring_stream.h"

#include <algorithm>

#include "util/logging.h"

namespace simsub::algo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SpringStream::SpringStream(std::span<const geo::Point> query,
                           int64_t start_position)
    : query_(query),
      d_(query.size(), kInf),
      s_(query.size(), 0),
      d_prev_(query.size(), kInf),
      s_prev_(query.size(), 0),
      origin_(start_position),
      count_(start_position) {
  SIMSUB_CHECK(!query.empty());
  SIMSUB_CHECK_GE(start_position, 0);
}

void SpringStream::Reset() {
  std::fill(d_.begin(), d_.end(), kInf);
  std::fill(d_prev_.begin(), d_prev_.end(), kInf);
  // The start arrays must be cleared too: leaving them stale would let a
  // post-Reset push inherit a match start from the previous stream the
  // moment a recurrence change (or a future kInf-propagation tweak) reads
  // an s_ cell whose d_ cell it did not also write.
  std::fill(s_.begin(), s_.end(), int64_t{0});
  std::fill(s_prev_.begin(), s_prev_.end(), int64_t{0});
  count_ = origin_;
  best_distance_ = kInf;
  best_range_ = geo::SubRange();
}

void SpringStream::Push(const geo::Point& p) {
  const size_t m = query_.size();
  d_.swap(d_prev_);
  s_.swap(s_prev_);
  int64_t row = count_;
  for (size_t j = 0; j < m; ++j) {
    double dist = geo::Distance(p, query_[j]);
    double best;
    int64_t start;
    if (j == 0) {
      // Star column: a match may begin at this stream position.
      best = 0.0;
      start = row;
    } else {
      best = d_[j - 1];
      start = s_[j - 1];
      if (d_prev_[j] < best) {
        best = d_prev_[j];
        start = s_prev_[j];
      }
      if (d_prev_[j - 1] < best) {
        best = d_prev_[j - 1];
        start = s_prev_[j - 1];
      }
    }
    if (best == kInf) {
      d_[j] = kInf;
      s_[j] = start;
    } else {
      d_[j] = dist + best;
      s_[j] = start;
    }
  }
  ++count_;
  if (d_.back() < best_distance_) {
    best_distance_ = d_.back();
    best_range_ = geo::SubRange(s_.back(), row);
  }
}

double SpringStream::current_tail_distance() const {
  SIMSUB_CHECK_GT(count_, origin_) << "no points pushed";
  return d_.back();
}

geo::SubRange SpringStream::current_tail_range() const {
  SIMSUB_CHECK_GT(count_, origin_) << "no points pushed";
  return geo::SubRange(s_.back(), count_ - 1);
}

}  // namespace simsub::algo
