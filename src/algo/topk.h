// Top-k subtrajectory search within one data trajectory. Paper Section 3.1:
// "the techniques for the setting k = 1 ... could be adapted to general
// settings of k by simply maintaining the k most similar subtrajectories" —
// this module is that adaptation, for the exact enumeration.
#ifndef SIMSUB_ALGO_TOPK_H_
#define SIMSUB_ALGO_TOPK_H_

#include <span>
#include <vector>

#include "geo/point.h"
#include "geo/trajectory.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// One ranked candidate subtrajectory.
struct RankedCandidate {
  geo::SubRange range;
  double distance = 0.0;
};

/// Bounded collector of the k smallest-distance candidates.
///
/// Offer() is O(log k); Sorted() returns ascending by distance (ties by
/// range position for determinism).
class TopKCollector {
 public:
  explicit TopKCollector(int k);

  void Offer(geo::SubRange range, double distance);

  bool full() const { return static_cast<int>(heap_.size()) >= k_; }
  /// Largest distance currently kept (+infinity until full).
  double worst() const;
  int k() const { return k_; }
  size_t size() const { return heap_.size(); }

  /// Extracts the collected candidates in ascending distance order.
  std::vector<RankedCandidate> Sorted() const;

 private:
  int k_;
  // Max-heap by distance (worst on top).
  std::vector<RankedCandidate> heap_;
};

/// Exact top-k: enumerates all n(n+1)/2 subtrajectories incrementally
/// (same cost as ExactS) and keeps the k best. With `min_size` > 1,
/// candidates shorter than min_size points are excluded — useful because
/// the raw top-k is otherwise dominated by near-duplicates of the optimum.
std::vector<RankedCandidate> TopKExact(
    const similarity::SimilarityMeasure& measure,
    std::span<const geo::Point> data, std::span<const geo::Point> query,
    int k, int min_size = 1);

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_TOPK_H_
