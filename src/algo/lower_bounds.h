// Cheap lower bounds on subtrajectory similarity — the pruning cascade
// shared by the UCR-adapted matcher and the database engine.
//
// The UCR suite (Rakthanmanon et al., KDD 2012) gets its speed from a
// cascade of ever-tighter, ever-costlier lower bounds that discard
// candidates before the full DP runs. This unit hosts the reusable pieces:
//
//  * BuildMbrEnvelopes — the sliding-window MBR envelopes behind LB_Keogh
//    (moved out of ucr.cc so other matchers can build them);
//  * MbrLowerBound — an O(1) LB_KimFL-style bound from the data
//    trajectory's MBR: every warping path must align the first and last
//    query point with SOME data point, each at least the MBR distance away;
//  * NearestEndpointLowerBound — the O(n) vectorized tightening of the same
//    bound using the exact nearest data point per query endpoint (computed
//    over the engine's cached SoA copy of the trajectory).
//
// Both endpoint bounds are valid for the WHOLE-trajectory optimum: they
// bound dist(sub, query) for every subtrajectory simultaneously, because a
// subtrajectory's points are a subset of the trajectory's. Validity depends
// on the measure's aggregation family (similarity::DistanceAggregation):
// kSum measures (DTW, CDTW) get the sum of the endpoint distances, kMax
// measures (Frechet, Hausdorff) the max, and kOther measures get 0 (no
// bound — pruning falls back to DP-level early abandoning only).
#ifndef SIMSUB_ALGO_LOWER_BOUNDS_H_
#define SIMSUB_ALGO_LOWER_BOUNDS_H_

#include <span>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"
#include "geo/soa.h"
#include "similarity/measure.h"

namespace simsub::algo {

/// Sliding-window MBR envelopes: env[i] = MBR(points[max(0, i-w) ..
/// min(end, i+w)]). Monotonic-deque sliding min/max per coordinate, O(n)
/// total. The 2-D adaptation of the LB_Keogh envelope.
std::vector<geo::Mbr> BuildMbrEnvelopes(std::span<const geo::Point> pts,
                                        int w);

/// O(1) LB_KimFL-style bound on min over subtrajectories T' of T of
/// dist(T', query), from T's bounding box alone. Returns 0 for kOther.
double MbrLowerBound(similarity::DistanceAggregation aggregation,
                     const geo::Mbr& data_mbr,
                     std::span<const geo::Point> query);

/// O(n) tightening of MbrLowerBound: the exact distance from each query
/// endpoint to its nearest data point (vectorized min-reduction over the
/// SoA copy). Always >= MbrLowerBound for the same trajectory. Returns 0
/// for kOther. Requires !data.empty().
double NearestEndpointLowerBound(similarity::DistanceAggregation aggregation,
                                 geo::PointsView data,
                                 std::span<const geo::Point> query);

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_LOWER_BOUNDS_H_
