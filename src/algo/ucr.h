// Adaptation of the UCR suite (Rakthanmanon et al., KDD 2012) to 2-D
// trajectories, following the paper's Appendix C. UCR enumerates the
// subsequences of exactly the query's length and prunes with a cascade of
// lower bounds before computing banded DTW:
//
//   1. LB_KimFL                — O(1) first/last-point bound;
//   2. LB_Keogh                — query MBR envelopes vs candidate points,
//                                 accumulated in a reordered sequence with
//                                 early abandoning;
//   3. reversed LB_Keogh       — data MBR envelopes vs query points ("use
//                                 the larger of the two bounds");
//   4. early-abandoning DTW    — banded DTW that also folds in the LB_Keogh
//                                 suffix remainder ("earlier early
//                                 abandoning of DTW using LB_Keogh").
//
// Adaptation notes (diff vs the 1-D original):
//   * Z-normalization is dropped (paper: designed for 1-D series).
//   * Envelopes are MBRs of query/data windows; point-to-envelope distance
//     is the point-to-rectangle distance.
//   * Reordering sorts positions by descending distance of the query point
//     from the query centroid — the 2-D analogue of UCR's |z| ordering (the
//     1-D trick orders by distance from the mean, i.e. the normalized
//     series' axis; the paper words this as "distance to the y-axis").
//   * The Sakoe-Chiba half-width is floor(R * m) in candidate-local indices
//     (R = 1 reduces to unconstrained DTW, matching Figure 8).
//
// DTW-only, as in the paper ("UCR only works for DTW").
#ifndef SIMSUB_ALGO_UCR_H_
#define SIMSUB_ALGO_UCR_H_

#include "algo/search.h"

namespace simsub::algo {

/// UCR-style fixed-length subsequence search under banded DTW.
class UcrSearch : public SubtrajectorySearch {
 public:
  /// `band_fraction` is the R parameter of Figure 8.
  explicit UcrSearch(double band_fraction = 1.0);

  std::string name() const override { return "UCR"; }

  double band_fraction() const { return band_fraction_; }

  // (see SubtrajectorySearch::Search)
 protected:
  SearchResult DoSearch(std::span<const geo::Point> data,
                        std::span<const geo::Point> query) const override;

 private:

  /// Pruning statistics of the last... intentionally not kept: Search is
  /// const and reusable; per-call counts are in SearchResult::stats, where
  /// `candidates` counts non-pruned candidates (full DTW computations) and
  /// `extend_calls` counts all enumerated start offsets.

 private:
  double band_fraction_;
};

}  // namespace simsub::algo

#endif  // SIMSUB_ALGO_UCR_H_
