// Gated Recurrent Unit (Cho et al., 2014) cell and sequence encoder with
// full backpropagation-through-time. This powers the t2vec-style learned
// trajectory measure: the encoder consumes grid-cell tokens and its final
// hidden state is the trajectory embedding.
#ifndef SIMSUB_NN_GRU_H_
#define SIMSUB_NN_GRU_H_

#include <iostream>
#include <span>
#include <vector>

#include "nn/param.h"
#include "util/random.h"
#include "util/status.h"

namespace simsub::nn {

/// One GRU step:
///   z = sigmoid(Wz x + Uz h + bz)
///   r = sigmoid(Wr x + Ur h + br)
///   c = tanh(Wh x + Uh (r .* h) + bh)
///   h' = (1 - z) .* h + z .* c
class GruCell {
 public:
  GruCell(int input_dim, int hidden_dim, util::Rng& rng);

  GruCell(const GruCell&) = delete;
  GruCell& operator=(const GruCell&) = delete;
  GruCell(GruCell&&) = default;
  GruCell& operator=(GruCell&&) = default;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

  /// Intermediate values of one step, retained for BPTT.
  struct StepCache {
    std::vector<double> x;
    std::vector<double> h_prev;
    std::vector<double> z;
    std::vector<double> r;
    std::vector<double> c;  // candidate (tanh) activation
  };

  /// Computes h' from (x, h). When `cache` is non-null the intermediates are
  /// stored for a later BackwardStep().
  std::vector<double> Step(std::span<const double> x,
                           std::span<const double> h,
                           StepCache* cache = nullptr) const;

  /// Given dL/dh' and the cached step, accumulates parameter gradients and
  /// returns (dL/dx, dL/dh).
  struct StepGrads {
    std::vector<double> dx;
    std::vector<double> dh_prev;
  };
  StepGrads BackwardStep(std::span<const double> dh_next,
                         const StepCache& cache);

  /// Registers this cell's parameters into `bag`.
  void RegisterParams(ParameterBag* bag);

  [[nodiscard]] util::Status Save(std::ostream& os) const;
  [[nodiscard]] static util::Result<GruCell> Load(std::istream& is);

  /// Copies weights from a same-shape cell.
  void CopyFrom(const GruCell& other);

 private:
  GruCell() = default;
  void Allocate();

  int input_dim_ = 0;
  int hidden_dim_ = 0;
  // Parameter matrices are row-major hidden_dim x input_dim (W*) or
  // hidden_dim x hidden_dim (U*).
  std::vector<double> wz_, uz_, bz_, gwz_, guz_, gbz_;
  std::vector<double> wr_, ur_, br_, gwr_, gur_, gbr_;
  std::vector<double> wh_, uh_, bh_, gwh_, guh_, gbh_;
};

}  // namespace simsub::nn

#endif  // SIMSUB_NN_GRU_H_
