// Parameter registration shared by all trainable modules. A module owns its
// weight and gradient buffers and registers views into a ParameterBag; the
// Adam optimizer walks the bag, so optimizers never know module internals.
#ifndef SIMSUB_NN_PARAM_H_
#define SIMSUB_NN_PARAM_H_

#include <cstddef>
#include <vector>

namespace simsub::nn {

/// Non-owning view over one parameter tensor and its gradient accumulator.
struct ParamView {
  std::vector<double>* value = nullptr;
  std::vector<double>* grad = nullptr;
};

/// Ordered collection of parameter views for one trainable model.
class ParameterBag {
 public:
  void Register(std::vector<double>* value, std::vector<double>* grad) {
    views_.push_back(ParamView{value, grad});
  }

  const std::vector<ParamView>& views() const { return views_; }

  size_t TotalSize() const {
    size_t total = 0;
    for (const auto& v : views_) total += v.value->size();
    return total;
  }

  /// Zeroes every gradient accumulator.
  void ZeroGrad() {
    for (auto& v : views_) {
      std::fill(v.grad->begin(), v.grad->end(), 0.0);
    }
  }

  /// Elementwise L2 norm of all gradients (diagnostics, clipping).
  double GradNorm() const;

  /// Scales all gradients by `factor` (gradient clipping support).
  void ScaleGrad(double factor) {
    for (auto& v : views_) {
      for (double& g : *v.grad) g *= factor;
    }
  }

 private:
  std::vector<ParamView> views_;
};

}  // namespace simsub::nn

#endif  // SIMSUB_NN_PARAM_H_
