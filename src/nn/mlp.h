// Small fully-connected network with per-layer activations. This is the
// function approximator behind the DQN (paper Section 6.1: one hidden layer
// of 20 ReLU units, sigmoid output head with 2+k units).
#ifndef SIMSUB_NN_MLP_H_
#define SIMSUB_NN_MLP_H_

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "nn/param.h"
#include "util/random.h"
#include "util/status.h"

namespace simsub::nn {

enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Parses "none|relu|sigmoid|tanh"; returns kNone on unknown input.
Activation ActivationFromName(const std::string& name);
const char* ActivationName(Activation act);

/// Applies the activation elementwise.
void ApplyActivation(Activation act, std::vector<double>* v);

/// d(act)/d(pre) given the *post*-activation value (all supported
/// activations admit this form).
double ActivationGradFromOutput(Activation act, double post);

/// One affine layer y = W x + b with an elementwise activation.
struct DenseLayer {
  int in = 0;
  int out = 0;
  Activation act = Activation::kNone;
  std::vector<double> w;   // row-major, out x in
  std::vector<double> b;   // out
  std::vector<double> gw;  // accumulated dL/dw
  std::vector<double> gb;  // accumulated dL/db
};

/// Multi-layer perceptron operating on single samples (minibatches loop and
/// accumulate gradients; at these sizes that is faster than a GEMM setup).
class Mlp {
 public:
  struct LayerSpec {
    int out = 0;
    Activation act = Activation::kNone;
  };

  /// Builds input_dim -> specs[0].out -> ... with He/Xavier initialization
  /// appropriate for each activation, using `rng` for reproducibility.
  Mlp(int input_dim, const std::vector<LayerSpec>& specs, util::Rng& rng);

  // The ParameterBag aliases the layer buffers: moving keeps element
  // addresses valid (vector storage moves wholesale), copying would not.
  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  /// Deep copy that rebuilds the parameter registry (for target networks).
  Mlp Clone() const;

  int input_dim() const { return input_dim_; }
  int output_dim() const { return layers_.empty() ? input_dim_ : layers_.back().out; }

  /// Inference-only forward pass.
  std::vector<double> Forward(std::span<const double> x) const;

  /// Per-layer post-activation values retained for Backward(). Reusing one
  /// Cache across calls avoids per-call allocations in hot loops (DQN
  /// training and RLS inference).
  struct Cache {
    std::vector<std::vector<double>> post;  // post[l] = output of layer l
  };

  /// Forward pass retaining intermediate activations.
  std::vector<double> Forward(std::span<const double> x, Cache* cache) const;

  /// Allocation-free forward: computes into `cache` (whose buffers are
  /// reused across calls) and returns a reference to the output activations,
  /// valid until the next call with the same cache.
  const std::vector<double>& ForwardCached(std::span<const double> x,
                                           Cache* cache) const;

  /// Accumulates parameter gradients for dL/dy = `dy` at the cached forward
  /// pass; returns dL/dx. Call params().ZeroGrad() to reset accumulators.
  std::vector<double> Backward(std::span<const double> x, const Cache& cache,
                               std::span<const double> dy);

  /// Copies weights from a same-architecture network (target-net sync).
  void CopyFrom(const Mlp& other);

  ParameterBag& params() { return bag_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

  /// Text (de)serialization of architecture + weights.
  [[nodiscard]] util::Status Save(std::ostream& os) const;
  [[nodiscard]] static util::Result<Mlp> Load(std::istream& is);

 private:
  Mlp() = default;
  void RegisterParams();

  int input_dim_ = 0;
  std::vector<DenseLayer> layers_;
  ParameterBag bag_;
};

}  // namespace simsub::nn

#endif  // SIMSUB_NN_MLP_H_
