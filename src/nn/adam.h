// Adam optimizer (Kingma & Ba, 2015) over a ParameterBag.
#ifndef SIMSUB_NN_ADAM_H_
#define SIMSUB_NN_ADAM_H_

#include <vector>

#include "nn/param.h"

namespace simsub::nn {

/// Stochastic gradient step with per-parameter adaptive moments.
///
/// Construct once per model; Step() consumes the accumulated gradients
/// (the caller is responsible for ZeroGrad() between minibatches).
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// When > 0, gradients are scaled down so their global L2 norm does not
    /// exceed this value before the update (stabilizes RL training).
    double clip_norm = 0.0;
  };

  Adam(ParameterBag* bag, Options options);

  /// Applies one Adam update using the gradients currently in the bag.
  void Step();

  /// Number of updates performed so far.
  long long step_count() const { return t_; }

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  ParameterBag* bag_;
  Options options_;
  long long t_ = 0;
  std::vector<std::vector<double>> m_;  // first moments, parallel to views
  std::vector<std::vector<double>> v_;  // second moments
};

}  // namespace simsub::nn

#endif  // SIMSUB_NN_ADAM_H_
