#include "nn/adam.h"

#include <cmath>

#include "util/logging.h"

namespace simsub::nn {

Adam::Adam(ParameterBag* bag, Options options)
    : bag_(bag), options_(options) {
  SIMSUB_CHECK(bag != nullptr);
  m_.reserve(bag->views().size());
  v_.reserve(bag->views().size());
  for (const auto& view : bag->views()) {
    m_.emplace_back(view.value->size(), 0.0);
    v_.emplace_back(view.value->size(), 0.0);
  }
}

void Adam::Step() {
  ++t_;
  if (options_.clip_norm > 0.0) {
    double norm = bag_->GradNorm();
    if (norm > options_.clip_norm) {
      bag_->ScaleGrad(options_.clip_norm / norm);
    }
  }
  double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  const auto& views = bag_->views();
  for (size_t k = 0; k < views.size(); ++k) {
    auto& value = *views[k].value;
    auto& grad = *views[k].grad;
    auto& m = m_[k];
    auto& v = v_[k];
    for (size_t i = 0; i < value.size(); ++i) {
      double g = grad[i];
      m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0 - options_.beta2) * g * g;
      double m_hat = m[i] / bias1;
      double v_hat = v[i] / bias2;
      value[i] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace simsub::nn
