#include "nn/gru.h"

#include <cmath>

#include "util/logging.h"

namespace simsub::nn {

namespace {

inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// y += M x for row-major M (rows x cols).
void MatVecAccum(const std::vector<double>& m, int rows, int cols,
                 std::span<const double> x, std::vector<double>* y) {
  for (int r = 0; r < rows; ++r) {
    const double* row = &m[static_cast<size_t>(r) * cols];
    double acc = 0.0;
    for (int c = 0; c < cols; ++c) acc += row[c] * x[static_cast<size_t>(c)];
    (*y)[static_cast<size_t>(r)] += acc;
  }
}

// dx += M^T d; dM += d x^T.
void BackwardMatVec(const std::vector<double>& m, std::vector<double>& gm,
                    int rows, int cols, std::span<const double> x,
                    const std::vector<double>& d, std::vector<double>* dx) {
  for (int r = 0; r < rows; ++r) {
    double dr = d[static_cast<size_t>(r)];
    if (dr == 0.0) continue;
    const double* row = &m[static_cast<size_t>(r) * cols];
    double* grow = &gm[static_cast<size_t>(r) * cols];
    for (int c = 0; c < cols; ++c) {
      grow[c] += dr * x[static_cast<size_t>(c)];
      if (dx != nullptr) (*dx)[static_cast<size_t>(c)] += dr * row[c];
    }
  }
}

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  SIMSUB_CHECK_GT(input_dim, 0);
  SIMSUB_CHECK_GT(hidden_dim, 0);
  Allocate();
  double wscale = std::sqrt(1.0 / input_dim);
  double uscale = std::sqrt(1.0 / hidden_dim);
  for (auto* w : {&wz_, &wr_, &wh_}) {
    for (double& v : *w) v = rng.Normal(0.0, wscale);
  }
  for (auto* u : {&uz_, &ur_, &uh_}) {
    for (double& v : *u) v = rng.Normal(0.0, uscale);
  }
}

void GruCell::Allocate() {
  size_t wsize = static_cast<size_t>(hidden_dim_) * input_dim_;
  size_t usize = static_cast<size_t>(hidden_dim_) * hidden_dim_;
  size_t bsize = static_cast<size_t>(hidden_dim_);
  for (auto* w : {&wz_, &wr_, &wh_}) w->assign(wsize, 0.0);
  for (auto* u : {&uz_, &ur_, &uh_}) u->assign(usize, 0.0);
  for (auto* b : {&bz_, &br_, &bh_}) b->assign(bsize, 0.0);
  for (auto* g : {&gwz_, &gwr_, &gwh_}) g->assign(wsize, 0.0);
  for (auto* g : {&guz_, &gur_, &guh_}) g->assign(usize, 0.0);
  for (auto* g : {&gbz_, &gbr_, &gbh_}) g->assign(bsize, 0.0);
}

std::vector<double> GruCell::Step(std::span<const double> x,
                                  std::span<const double> h,
                                  StepCache* cache) const {
  SIMSUB_CHECK_EQ(static_cast<int>(x.size()), input_dim_);
  SIMSUB_CHECK_EQ(static_cast<int>(h.size()), hidden_dim_);
  const int H = hidden_dim_;
  std::vector<double> z(bz_);
  MatVecAccum(wz_, H, input_dim_, x, &z);
  MatVecAccum(uz_, H, H, h, &z);
  for (double& v : z) v = Sigmoid(v);

  std::vector<double> r(br_);
  MatVecAccum(wr_, H, input_dim_, x, &r);
  MatVecAccum(ur_, H, H, h, &r);
  for (double& v : r) v = Sigmoid(v);

  std::vector<double> rh(static_cast<size_t>(H));
  for (int i = 0; i < H; ++i) {
    rh[static_cast<size_t>(i)] =
        r[static_cast<size_t>(i)] * h[static_cast<size_t>(i)];
  }
  std::vector<double> c(bh_);
  MatVecAccum(wh_, H, input_dim_, x, &c);
  MatVecAccum(uh_, H, H, rh, &c);
  for (double& v : c) v = std::tanh(v);

  std::vector<double> h_next(static_cast<size_t>(H));
  for (int i = 0; i < H; ++i) {
    size_t k = static_cast<size_t>(i);
    h_next[k] = (1.0 - z[k]) * h[k] + z[k] * c[k];
  }
  if (cache != nullptr) {
    cache->x.assign(x.begin(), x.end());
    cache->h_prev.assign(h.begin(), h.end());
    cache->z = z;
    cache->r = r;
    cache->c = c;
  }
  return h_next;
}

GruCell::StepGrads GruCell::BackwardStep(std::span<const double> dh_next,
                                         const GruCell::StepCache& cache) {
  const int H = hidden_dim_;
  SIMSUB_CHECK_EQ(static_cast<int>(dh_next.size()), H);
  StepGrads out;
  out.dx.assign(static_cast<size_t>(input_dim_), 0.0);
  out.dh_prev.assign(static_cast<size_t>(H), 0.0);

  std::vector<double> dz(static_cast<size_t>(H));
  std::vector<double> dc(static_cast<size_t>(H));
  for (int i = 0; i < H; ++i) {
    size_t k = static_cast<size_t>(i);
    double dh = dh_next[k];
    // h' = (1-z) h + z c
    out.dh_prev[k] += dh * (1.0 - cache.z[k]);
    dz[k] = dh * (cache.c[k] - cache.h_prev[k]) * cache.z[k] *
            (1.0 - cache.z[k]);  // through sigmoid
    dc[k] = dh * cache.z[k] * (1.0 - cache.c[k] * cache.c[k]);  // tanh'
  }

  // Candidate path: c = tanh(Wh x + Uh (r .* h) + bh).
  std::vector<double> rh(static_cast<size_t>(H));
  for (int i = 0; i < H; ++i) {
    size_t k = static_cast<size_t>(i);
    rh[k] = cache.r[k] * cache.h_prev[k];
  }
  std::vector<double> drh(static_cast<size_t>(H), 0.0);
  BackwardMatVec(wh_, gwh_, H, input_dim_, cache.x, dc, &out.dx);
  BackwardMatVec(uh_, guh_, H, H, rh, dc, &drh);
  for (int i = 0; i < H; ++i) gbh_[static_cast<size_t>(i)] += dc[static_cast<size_t>(i)];

  std::vector<double> dr(static_cast<size_t>(H));
  for (int i = 0; i < H; ++i) {
    size_t k = static_cast<size_t>(i);
    out.dh_prev[k] += drh[k] * cache.r[k];
    dr[k] = drh[k] * cache.h_prev[k] * cache.r[k] * (1.0 - cache.r[k]);
  }

  // Reset gate path.
  BackwardMatVec(wr_, gwr_, H, input_dim_, cache.x, dr, &out.dx);
  BackwardMatVec(ur_, gur_, H, H, cache.h_prev, dr, &out.dh_prev);
  for (int i = 0; i < H; ++i) gbr_[static_cast<size_t>(i)] += dr[static_cast<size_t>(i)];

  // Update gate path.
  BackwardMatVec(wz_, gwz_, H, input_dim_, cache.x, dz, &out.dx);
  BackwardMatVec(uz_, guz_, H, H, cache.h_prev, dz, &out.dh_prev);
  for (int i = 0; i < H; ++i) gbz_[static_cast<size_t>(i)] += dz[static_cast<size_t>(i)];

  return out;
}

void GruCell::RegisterParams(ParameterBag* bag) {
  bag->Register(&wz_, &gwz_);
  bag->Register(&uz_, &guz_);
  bag->Register(&bz_, &gbz_);
  bag->Register(&wr_, &gwr_);
  bag->Register(&ur_, &gur_);
  bag->Register(&br_, &gbr_);
  bag->Register(&wh_, &gwh_);
  bag->Register(&uh_, &guh_);
  bag->Register(&bh_, &gbh_);
}

util::Status GruCell::Save(std::ostream& os) const {
  os << "gru " << input_dim_ << " " << hidden_dim_ << "\n";
  os.precision(17);
  for (const auto* v : {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_}) {
    for (double x : *v) os << x << " ";
    os << "\n";
  }
  if (!os) return util::Status::IOError("GRU serialization failed");
  return util::Status::OK();
}

util::Result<GruCell> GruCell::Load(std::istream& is) {
  std::string magic;
  GruCell cell;
  is >> magic >> cell.input_dim_ >> cell.hidden_dim_;
  if (!is || magic != "gru" || cell.input_dim_ <= 0 || cell.hidden_dim_ <= 0) {
    return util::Status::IOError("bad GRU header");
  }
  cell.Allocate();
  for (auto* v : {&cell.wz_, &cell.uz_, &cell.bz_, &cell.wr_, &cell.ur_,
                  &cell.br_, &cell.wh_, &cell.uh_, &cell.bh_}) {
    for (double& x : *v) is >> x;
  }
  if (!is) return util::Status::IOError("truncated GRU weights");
  return cell;
}

void GruCell::CopyFrom(const GruCell& other) {
  SIMSUB_CHECK_EQ(input_dim_, other.input_dim_);
  SIMSUB_CHECK_EQ(hidden_dim_, other.hidden_dim_);
  wz_ = other.wz_;
  uz_ = other.uz_;
  bz_ = other.bz_;
  wr_ = other.wr_;
  ur_ = other.ur_;
  br_ = other.br_;
  wh_ = other.wh_;
  uh_ = other.uh_;
  bh_ = other.bh_;
}

}  // namespace simsub::nn
