#include "nn/param.h"

#include <cmath>

namespace simsub::nn {

double ParameterBag::GradNorm() const {
  double sum = 0.0;
  for (const auto& v : views_) {
    for (double g : *v.grad) sum += g * g;
  }
  return std::sqrt(sum);
}

}  // namespace simsub::nn
