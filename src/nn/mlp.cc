#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace simsub::nn {

Activation ActivationFromName(const std::string& name) {
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  return Activation::kNone;
}

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "none";
}

void ApplyActivation(Activation act, std::vector<double>* v) {
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (double& x : *v) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::kSigmoid:
      for (double& x : *v) x = 1.0 / (1.0 + std::exp(-x));
      return;
    case Activation::kTanh:
      for (double& x : *v) x = std::tanh(x);
      return;
  }
}

double ActivationGradFromOutput(Activation act, double post) {
  switch (act) {
    case Activation::kNone:
      return 1.0;
    case Activation::kRelu:
      return post > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return post * (1.0 - post);
    case Activation::kTanh:
      return 1.0 - post * post;
  }
  return 1.0;
}

Mlp::Mlp(int input_dim, const std::vector<LayerSpec>& specs, util::Rng& rng)
    : input_dim_(input_dim) {
  SIMSUB_CHECK_GT(input_dim, 0);
  SIMSUB_CHECK(!specs.empty());
  int in = input_dim;
  for (const LayerSpec& spec : specs) {
    SIMSUB_CHECK_GT(spec.out, 0);
    DenseLayer layer;
    layer.in = in;
    layer.out = spec.out;
    layer.act = spec.act;
    layer.w.resize(static_cast<size_t>(in) * spec.out);
    layer.b.assign(static_cast<size_t>(spec.out), 0.0);
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    // He initialization for ReLU, Xavier otherwise.
    double scale = spec.act == Activation::kRelu
                       ? std::sqrt(2.0 / in)
                       : std::sqrt(1.0 / in);
    for (double& w : layer.w) w = rng.Normal(0.0, scale);
    layers_.push_back(std::move(layer));
    in = spec.out;
  }
  RegisterParams();
}

void Mlp::RegisterParams() {
  for (DenseLayer& layer : layers_) {
    bag_.Register(&layer.w, &layer.gw);
    bag_.Register(&layer.b, &layer.gb);
  }
}

std::vector<double> Mlp::Forward(std::span<const double> x) const {
  Cache unused;
  return Forward(x, &unused);
}

std::vector<double> Mlp::Forward(std::span<const double> x,
                                 Cache* cache) const {
  return ForwardCached(x, cache);
}

const std::vector<double>& Mlp::ForwardCached(std::span<const double> x,
                                              Cache* cache) const {
  SIMSUB_CHECK_EQ(static_cast<int>(x.size()), input_dim_);
  cache->post.resize(layers_.size());
  std::span<const double> cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const DenseLayer& layer = layers_[l];
    std::vector<double>& out = cache->post[l];
    out.resize(static_cast<size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      const double* wrow = &layer.w[static_cast<size_t>(o) * layer.in];
      double acc = layer.b[static_cast<size_t>(o)];
      for (int i = 0; i < layer.in; ++i) acc += wrow[i] * cur[static_cast<size_t>(i)];
      out[static_cast<size_t>(o)] = acc;
    }
    ApplyActivation(layer.act, &out);
    cur = out;
  }
  return cache->post.back();
}

std::vector<double> Mlp::Backward(std::span<const double> x,
                                  const Cache& cache,
                                  std::span<const double> dy) {
  SIMSUB_CHECK_EQ(cache.post.size(), layers_.size());
  std::vector<double> grad(dy.begin(), dy.end());
  for (size_t l = layers_.size(); l-- > 0;) {
    DenseLayer& layer = layers_[l];
    const std::vector<double>& post = cache.post[l];
    SIMSUB_CHECK_EQ(static_cast<int>(grad.size()), layer.out);
    // Through the activation.
    std::vector<double> dpre(static_cast<size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      dpre[static_cast<size_t>(o)] =
          grad[static_cast<size_t>(o)] *
          ActivationGradFromOutput(layer.act, post[static_cast<size_t>(o)]);
    }
    // Input to this layer: previous layer's post, or x for the first layer.
    std::span<const double> input =
        l == 0 ? x : std::span<const double>(cache.post[l - 1]);
    // Accumulate parameter grads and propagate to the input.
    std::vector<double> dinput(static_cast<size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double d = dpre[static_cast<size_t>(o)];
      if (d == 0.0) continue;
      double* gw_row = &layer.gw[static_cast<size_t>(o) * layer.in];
      const double* w_row = &layer.w[static_cast<size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) {
        gw_row[i] += d * input[static_cast<size_t>(i)];
        dinput[static_cast<size_t>(i)] += d * w_row[i];
      }
      layer.gb[static_cast<size_t>(o)] += d;
    }
    grad = std::move(dinput);
  }
  return grad;
}

Mlp Mlp::Clone() const {
  Mlp copy;
  copy.input_dim_ = input_dim_;
  copy.layers_ = layers_;
  copy.RegisterParams();
  return copy;
}

void Mlp::CopyFrom(const Mlp& other) {
  SIMSUB_CHECK_EQ(layers_.size(), other.layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    SIMSUB_CHECK_EQ(layers_[l].w.size(), other.layers_[l].w.size());
    layers_[l].w = other.layers_[l].w;
    layers_[l].b = other.layers_[l].b;
  }
}

util::Status Mlp::Save(std::ostream& os) const {
  os << "mlp " << input_dim_ << " " << layers_.size() << "\n";
  for (const DenseLayer& layer : layers_) {
    os << layer.in << " " << layer.out << " " << ActivationName(layer.act)
       << "\n";
    os.precision(17);
    for (double w : layer.w) os << w << " ";
    os << "\n";
    for (double b : layer.b) os << b << " ";
    os << "\n";
  }
  if (!os) return util::Status::IOError("MLP serialization failed");
  return util::Status::OK();
}

util::Result<Mlp> Mlp::Load(std::istream& is) {
  std::string magic;
  size_t num_layers = 0;
  Mlp mlp;
  is >> magic >> mlp.input_dim_ >> num_layers;
  if (!is || magic != "mlp") {
    return util::Status::IOError("bad MLP header");
  }
  for (size_t l = 0; l < num_layers; ++l) {
    DenseLayer layer;
    std::string act_name;
    is >> layer.in >> layer.out >> act_name;
    if (!is || layer.in <= 0 || layer.out <= 0) {
      return util::Status::IOError("bad MLP layer header");
    }
    layer.act = ActivationFromName(act_name);
    layer.w.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.b.resize(static_cast<size_t>(layer.out));
    for (double& w : layer.w) is >> w;
    for (double& b : layer.b) is >> b;
    if (!is) return util::Status::IOError("truncated MLP weights");
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    mlp.layers_.push_back(std::move(layer));
  }
  mlp.RegisterParams();
  return mlp;
}

}  // namespace simsub::nn
