#!/usr/bin/env python3
"""Project-invariant linter: repo-specific rules the generic tools can't see.

Seven rules, each encoding a contract an earlier PR established:

  thread       No std::thread (or std::jthread) object use outside
               util/thread_pool.* — all parallelism goes through the
               persistent util::ThreadPool (PR 2's contract); per-call-site
               thread spawning is exactly what that PR removed. Static
               queries like std::thread::hardware_concurrency() are fine.

  min-list     No initializer-list std::min({...})/std::max({...}) in the
               src/geo and src/similarity hot kernels. PR 3 hoisted these
               into nested two-argument std::min chains so the DP
               recurrences autovectorize; an initializer-list overload
               materializes a std::initializer_list and blocks that.

  determinism  No direct time(), rand(), or srand() calls in src/. Results
               must be reproducible from seeds (util::Rng) and timing comes
               from util::Stopwatch / std::chrono; libc's global-state RNG
               and wall-clock reads break run-to-run determinism (and
               concurrency-mt-unsafe is pruned from .clang-tidy because
               this rule covers the dangerous cases precisely).

  nodiscard    Every util::Status- or util::Result-returning function
               declaration in src/**/*.h carries [[nodiscard]]. Ignoring a
               fallible outcome is a bug; the attribute turns it into a
               compiler warning at every call site.

  raw-io       No raw write()/read()/rename()/fsync() calls outside
               util/io.* and net/ — file and socket I/O goes through the
               checked util::io wrappers (PR 8's contract) so every byte
               crosses the failpoint sites and EINTR loops exactly once.
               A raw call is a hole in the fault-injection coverage.

  decode-cast  No reinterpret_cast to a structured pointer type in src/net/
               or src/data/ outside the blessed decode helpers (net/wire.cc,
               data/snapshot.cc). Those two files own the byte-level layout
               of untrusted input and carry the alignment/size proofs; a
               cast anywhere else is an unvalidated decode path the fuzzers
               never see. Casts to byte-ish targets (char*, unsigned char*,
               uint8_t*, std::byte*) and the sockaddr shims the socket API
               forces are allowed everywhere.

  decode-bounds
               Inside the blessed decode helpers themselves, every
               .resize()/.reserve() whose size is not a literal (or derived
               from an existing container via .size()/sizeof) must have the
               sizing value guarded within the preceding dozen lines — a
               Fits()/if bound check, a SIMSUB_CHECK, or a provenance line
               showing it came from a container we already own. An attacker
               controls every length field in a frame or snapshot header;
               an unguarded resize is a one-frame 64 MB allocation.

Scope: src/ only (tests may spawn raw threads to provoke races; benches may
time whatever they like). Comments and string literals are stripped before
matching, so documentation may mention the banned spellings freely.

Usage:
  tools/lint.py [--root DIR]   # lint DIR (default: the repo root)
  tools/lint.py --self-test    # prove each rule trips on a violation

Exit codes: 0 clean, 1 findings, 2 usage/self-test failure.
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".cc")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure
    so finding line numbers stay valid. Handles // and /* */ comments,
    "..." and '...' literals with backslash escapes. Raw strings are rare
    here and not handled; the repo has none in src/."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def finding(path, line, rule, message):
    return f"{path}:{line}: [{rule}] {message}"


# --- rule: thread -----------------------------------------------------------

THREAD_RE = re.compile(r"std::j?thread\b(?!\s*::)")


def check_thread(rel, text):
    if rel.replace(os.sep, "/").startswith("src/util/thread_pool."):
        return []
    out = []
    for match in THREAD_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        out.append(finding(
            rel, line, "thread",
            "std::thread outside util/thread_pool.* — use util::ThreadPool "
            "(PR 2 contract); std::thread::hardware_concurrency() is the "
            "only allowed spelling"))
    return out


# --- rule: min-list ---------------------------------------------------------

MIN_LIST_RE = re.compile(r"std::(?:min|max)\s*\(\s*\{")
MIN_LIST_DIRS = ("src/geo/", "src/similarity/")


def check_min_list(rel, text):
    posix = rel.replace(os.sep, "/")
    if not posix.startswith(MIN_LIST_DIRS):
        return []
    out = []
    for match in MIN_LIST_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        out.append(finding(
            rel, line, "min-list",
            "initializer-list std::min({...}) in a hot kernel — PR 3 "
            "replaced these with nested two-argument std::min so the DP "
            "sweeps autovectorize; keep it that way"))
    return out


# --- rule: determinism ------------------------------------------------------

# `(?<![\w.>])` rejects member calls (x.time(, p->time() while still
# catching time(, ::time( and std::time(.
DETERMINISM_RE = re.compile(r"(?<![\w.>])(?:std::)?(time|rand|srand)\s*\(")


def check_determinism(rel, text):
    out = []
    for match in DETERMINISM_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        out.append(finding(
            rel, line, "determinism",
            f"direct {match.group(1)}() in src/ — results must reproduce "
            "from seeds: use util::Rng for randomness and util::Stopwatch/"
            "std::chrono for timing"))
    return out


# --- rule: nodiscard --------------------------------------------------------

# A header-file function declaration returning Status / Result<...> by
# value. Anchored to the line start (after indentation and the usual
# declaration prefixes) so member types (`util::Status status;`),
# constructors (`Status(StatusCode ...)`), and reference-returning
# accessors (`const Status& status()`) don't match.
NODISCARD_DECL_RE = re.compile(
    r"^[ \t]*"
    r"(?P<attr>\[\[nodiscard\]\][ \t]+)?"
    r"(?:static[ \t]+|virtual[ \t]+|inline[ \t]+|constexpr[ \t]+|"
    r"friend[ \t]+|explicit[ \t]+)*"
    r"(?:util::|simsub::util::)?"
    r"(?:Status|Result<[^;{}=]*>)"
    r"[ \t]+[A-Za-z_]\w*[ \t]*\(")


def check_nodiscard(rel, text):
    if not rel.endswith(".h"):
        return []
    out = []
    lines = text.split("\n")
    for idx, line in enumerate(lines):
        match = NODISCARD_DECL_RE.match(line)
        if not match or match.group("attr"):
            continue
        # The attribute may sit alone on the preceding line.
        if idx > 0 and "[[nodiscard]]" in lines[idx - 1]:
            continue
        out.append(finding(
            rel, idx + 1, "nodiscard",
            "Status/Result-returning declaration without [[nodiscard]] — "
            "ignoring a fallible outcome must warn at the call site"))
    return out


# --- rule: raw-io -----------------------------------------------------------

# ::write( / std::rename( / bare write( — but not member calls (f.write(,
# r->read() or qualified names from other scopes (Writer::write().
RAW_IO_RE = re.compile(
    r"(?<![\w.>:])(?:std::|::)?(write|read|rename|fsync)\s*\(")
RAW_IO_EXEMPT = ("src/util/io.", "src/net/")


def check_raw_io(rel, text):
    posix = rel.replace(os.sep, "/")
    if posix.startswith(RAW_IO_EXEMPT):
        return []
    out = []
    for match in RAW_IO_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        out.append(finding(
            rel, line, "raw-io",
            f"raw {match.group(1)}() outside util/io.* — route file and "
            "socket I/O through util::io (PR 8 contract) so failpoint "
            "sites and EINTR handling cover it"))
    return out


# --- rule: decode-cast ------------------------------------------------------

DECODE_CAST_RE = re.compile(r"reinterpret_cast\s*<\s*([^>]*?)\s*>")
DECODE_CAST_DIRS = ("src/net/", "src/data/")
# wire.cc and snapshot.cc are the blessed byte-layout owners: every cast
# there sits behind the size/alignment validation the fuzz harnesses hammer.
DECODE_CAST_BLESSED = ("src/net/wire.cc", "src/data/snapshot.cc")
# Byte-ish targets are safe in either direction (no layout is being
# asserted); sockaddr casts are the POSIX socket API's own idiom.
DECODE_CAST_BYTEISH_RE = re.compile(
    r"^(?:const\s+)?(?:char|unsigned\s+char|(?:std::)?uint8_t|std::byte)"
    r"\s*\*$")


def check_decode_cast(rel, text):
    posix = rel.replace(os.sep, "/")
    if not posix.startswith(DECODE_CAST_DIRS) or posix in DECODE_CAST_BLESSED:
        return []
    out = []
    for match in DECODE_CAST_RE.finditer(text):
        target = " ".join(match.group(1).split())
        if DECODE_CAST_BYTEISH_RE.match(target) or "sockaddr" in target:
            continue
        line = text.count("\n", 0, match.start()) + 1
        out.append(finding(
            rel, line, "decode-cast",
            f"reinterpret_cast<{target}> outside the blessed decode helpers "
            "(net/wire.cc, data/snapshot.cc) — structured views of raw "
            "bytes must go through the validated decode paths the fuzzers "
            "cover"))
    return out


# --- rule: decode-bounds ----------------------------------------------------

DECODE_BOUNDS_FILES = ("src/net/wire.cc", "src/data/snapshot.cc")
DECODE_BOUNDS_RE = re.compile(r"\.\s*(resize|reserve)\s*\(")
DECODE_BOUNDS_WINDOW = 12  # lines of context searched for a guard
# A sizing arg is self-evidently bounded when it is a numeric literal,
# derives from a container we already own (.size()/sizeof), or is a
# zero-argument accessor on *this (no raw input can flow through those).
DECODE_BOUNDS_LITERAL_RE = re.compile(r"^[\d'uUlLzZ\s+*-]+$")
DECODE_BOUNDS_ACCESSOR_RE = re.compile(r"^[A-Za-z_]\w*\(\)$")
DECODE_BOUNDS_SKIP_IDENTS = frozenset((
    "static_cast", "const_cast", "size_t", "std", "auto", "unsigned",
    "signed", "long", "int", "short", "char", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t"))
DECODE_BOUNDS_GUARD_RE = re.compile(r"Fits\s*\(|\bif\s*\(|CHECK|\.size\s*\(|"
                                    r"sizeof")


def _call_argument(text, open_paren):
    """Returns the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
    return text[open_paren + 1:]


def check_decode_bounds(rel, text):
    posix = rel.replace(os.sep, "/")
    if posix not in DECODE_BOUNDS_FILES:
        return []
    out = []
    lines = text.split("\n")
    for match in DECODE_BOUNDS_RE.finditer(text):
        arg = _call_argument(text, text.index("(", match.start()))
        arg = arg.strip()
        if (not arg or DECODE_BOUNDS_LITERAL_RE.match(arg)
                or ".size(" in arg.replace(" ", "") or "sizeof" in arg
                or DECODE_BOUNDS_ACCESSOR_RE.match(arg)):
            continue
        idents = [i for i in re.findall(r"[A-Za-z_]\w*", arg)
                  if i not in DECODE_BOUNDS_SKIP_IDENTS]
        lineno = text.count("\n", 0, match.start()) + 1
        ident = idents[0] if idents else None
        guarded = False
        if ident is not None:
            ident_re = re.compile(rf"\b{re.escape(ident)}\b")
            window = lines[max(0, lineno - 1 - DECODE_BOUNDS_WINDOW):
                           lineno - 1]
            guarded = any(ident_re.search(context_line)
                          and DECODE_BOUNDS_GUARD_RE.search(context_line)
                          for context_line in window)
        if not guarded:
            out.append(finding(
                rel, lineno, "decode-bounds",
                f"{match.group(1)}({arg}) sized from "
                f"'{ident or arg}' with no bound check in the preceding "
                f"{DECODE_BOUNDS_WINDOW} lines — decode-path lengths are "
                "attacker-controlled; guard with Fits()/if/SIMSUB_CHECK "
                "before allocating"))
    return out


RULES = (check_thread, check_min_list, check_determinism, check_nodiscard,
         check_raw_io, check_decode_cast, check_decode_bounds)


def lint_tree(root):
    findings = []
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        sys.exit(f"error: {src} does not exist — pass --root at a repo root")
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                text = strip_comments_and_strings(f.read())
            for rule in RULES:
                findings.extend(rule(rel, text))
    return findings


# --- self-test --------------------------------------------------------------

# One injected violation per rule, each in a location the rule scopes to,
# plus look-alikes that must NOT trip (allowed spellings, comments).
SELF_TEST_CASES = [
    ("thread", "src/engine/worker.cc", """
#include <thread>
void Spawn() {
  std::thread t([] {});  // violation
  t.join();
}
int Width() { return (int)std::thread::hardware_concurrency(); }  // ok
"""),
    ("min-list", "src/similarity/kernel.cc", """
double Recur(double a, double b, double c) {
  return std::min({a, b, c});  // violation
}
double Ok(double a, double b, double c) {
  return std::min(a, std::min(b, c));  // ok
}
"""),
    ("determinism", "src/data/sampler.cc", """
#include <cstdlib>
long Seed() {
  return time(nullptr) + rand();  // two violations
}
// time( and rand( in a comment must not trip
"""),
    ("nodiscard", "src/util/flags.h", """
namespace simsub::util {
Status WriteThing(const char* path);  // violation: no [[nodiscard]]
[[nodiscard]] Status WriteOther(const char* path);  // ok
const Status& last_status();  // ok: reference accessor
}
"""),
    ("raw-io", "src/data/exporter.cc", """
#include <unistd.h>
void Dump(int fd, const void* p, unsigned n) {
  ::write(fd, p, n);  // violation
}
void Fine(Buffer& buf, Reader* r) {
  buf.write("x", 1);     // ok: member call
  r->read();             // ok: member call
  Codec::rename("a");    // ok: scoped name from another class
}
// ::fsync( in a comment must not trip
"""),
    ("decode-cast", "src/data/columns.cc", """
const double* Decode(const unsigned char* p) {
  return reinterpret_cast<const double*>(p);  // violation: structured view
}
const char* Bytes(const unsigned char* p) {
  return reinterpret_cast<const char*>(p);  // ok: byte-ish target
}
void Sock(void* a) {
  auto* sa = reinterpret_cast<struct sockaddr*>(a);  // ok: socket API shim
  (void)sa;
}
"""),
    ("decode-bounds", "src/net/wire.cc", """
void DecodeVec(Reader& r, std::vector<int>& v) {
  uint32_t n = r.U32();
  v.resize(n);  // violation: wire length allocated with no bound check
}
void Guarded(Reader& r, std::vector<int>& v, const std::vector<int>& src) {
  uint32_t n = r.U32();
  if (!r.Fits(n, 4)) return;
  v.reserve(n);               // ok: bounded by Fits just above
  v.reserve(16);              // ok: literal
  v.reserve(src.size() + 1);  // ok: derived from a container we own
}
"""),
]

CLEAN_FILE = ("src/geo/clean.cc", """
// std::thread in a comment is fine; "std::min({1, 2})" in a string too.
#include <algorithm>
double Fine(double a, double b) { return std::min(a, b); }
""")


def self_test():
    failures = []
    for rule_name, rel, content in SELF_TEST_CASES:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            found = lint_tree(tmp)
            tripped = [f for f in found if f"[{rule_name}]" in f]
            others = [f for f in found if f"[{rule_name}]" not in f]
            if not tripped:
                failures.append(
                    f"rule '{rule_name}' did not trip on its injected "
                    f"violation in {rel}")
            if others:
                failures.append(
                    f"rule cross-talk on {rel}: {others}")
            print(f"rule '{rule_name}': "
                  f"{'tripped as expected' if tripped else 'MISSED'} "
                  f"({len(tripped)} finding(s))")

    with tempfile.TemporaryDirectory() as tmp:
        rel, content = CLEAN_FILE
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        found = lint_tree(tmp)
        if found:
            failures.append(f"clean file raised findings: {found}")
        else:
            print("clean file: no findings, as expected")

    if failures:
        print("\nself-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 2
    print(f"\nself-test OK: all {len(SELF_TEST_CASES)} rules trip on "
          "injected violations and stay quiet on clean code")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: this repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule trips on an injected "
                             "violation, then exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(os.path.abspath(args.root))
    if findings:
        print(f"lint FAILED: {len(findings)} finding(s)\n")
        for f in findings:
            print(f"  {f}")
        return 1
    print("lint passed: src/ upholds all project invariants "
          f"({', '.join(r.__name__.removeprefix('check_') for r in RULES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
