#!/usr/bin/env python3
"""Runs clang-tidy over the project's compilation database and gates on it.

Feeds every first-party translation unit under src/ (optionally tests/,
bench/, examples/, tools/ with --all) from build/compile_commands.json to
clang-tidy in parallel, using the checked-in .clang-tidy configuration.
Exits 1 when any diagnostic is emitted, so CI can use it as a hard gate;
the curated check set lives in .clang-tidy, not here.

Usage:
  cmake -B build -S .          # CMAKE_EXPORT_COMPILE_COMMANDS is always on
  tools/run_clang_tidy.py --build-dir build
  tools/run_clang_tidy.py --build-dir build --all -j 8
  tools/run_clang_tidy.py --build-dir build --allow-missing   # local opt-out

clang-tidy is resolved from --binary, then `clang-tidy`, then the newest
versioned `clang-tidy-N` on PATH. A missing binary is an error (exit 2)
unless --allow-missing is given, which reports a skip and exits 0 so
developer machines without LLVM can still run the full ctest suite.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# First-party directories gated by default. Tests and benches compile with
# the same warnings but churn faster; --all opts them in.
DEFAULT_DIRS = ("src",)
ALL_DIRS = ("src", "tests", "bench", "examples", "tools")


def find_clang_tidy(explicit):
    candidates = [explicit] if explicit else []
    candidates.append("clang-tidy")
    candidates.extend(f"clang-tidy-{v}" for v in range(25, 13, -1))
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        sys.exit(f"error: {path} not found — configure with "
                 "`cmake -B build -S .` first (the project always exports "
                 "its compilation database)")
    with open(path) as f:
        return json.load(f)


def select_files(commands, dirs):
    prefixes = tuple(os.path.join(REPO_ROOT, d) + os.sep for d in dirs)
    files = sorted({os.path.abspath(entry["file"]) for entry in commands})
    return [f for f in files if f.startswith(prefixes)]


def run_one(clang_tidy, build_dir, path):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        capture_output=True, text=True)
    # clang-tidy prints findings on stdout; stderr carries the "N warnings
    # generated" chatter plus real driver errors — keep only the errors.
    errors = [line for line in proc.stderr.splitlines()
              if "error:" in line.lower()]
    return path, proc.returncode, proc.stdout.strip(), "\n".join(errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree containing compile_commands.json")
    parser.add_argument("--binary", default=None,
                        help="clang-tidy executable to use")
    parser.add_argument("--all", action="store_true",
                        help="lint tests/bench/examples/tools too, not just "
                             "src/")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1),
                        help="parallel clang-tidy processes")
    parser.add_argument("--allow-missing", action="store_true",
                        help="exit 0 with a notice when clang-tidy is not "
                             "installed (local runs; CI must not pass this)")
    args = parser.parse_args()

    clang_tidy = find_clang_tidy(args.binary)
    if clang_tidy is None:
        msg = "clang-tidy not found on PATH"
        if args.allow_missing:
            print(f"SKIPPED: {msg} (--allow-missing)")
            return 0
        sys.exit(f"error: {msg} — install clang-tidy or pass "
                 "--allow-missing to skip locally")

    build_dir = os.path.abspath(args.build_dir)
    commands = load_compile_commands(build_dir)
    files = select_files(commands, ALL_DIRS if args.all else DEFAULT_DIRS)
    if not files:
        sys.exit("error: no first-party files matched the compilation "
                 "database — was the build configured from the repo root?")

    print(f"clang-tidy: {clang_tidy}")
    print(f"linting {len(files)} translation units with {args.jobs} jobs")

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, build_dir, f)
                   for f in files]
        for future in concurrent.futures.as_completed(futures):
            path, returncode, findings, errors = future.result()
            rel = os.path.relpath(path, REPO_ROOT)
            if returncode != 0 or findings:
                failures += 1
                print(f"\nFAIL {rel}")
                if findings:
                    print(findings)
                if errors:
                    print(errors, file=sys.stderr)
            else:
                print(f"  ok {rel}")

    if failures:
        print(f"\nclang-tidy gate FAILED: {failures} of {len(files)} "
              "translation units have diagnostics (check set: .clang-tidy)")
        return 1
    print(f"\nclang-tidy gate passed: {len(files)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
