// simsub network server: the socket front end (net/server.h) over a
// service::QueryService, speaking the length-prefixed binary protocol of
// net/wire.h.
//
//   simsub_server --snapshot=city.snap --port=7447 --threads=8
//   simsub_server --data=city.csv --kind=porto --port=7447
//   simsub_server --generate=1000 --port=0          # synthetic database
//   simsub_server --smoke                           # loopback self-test
//
// Admission control is on by default: a bounded in-flight window (2x the
// worker count unless --max_inflight says otherwise) sheds excess load
// with ResourceExhausted reports instead of queueing without limit, and
// --quota_qps enables per-client token buckets. SIGTERM / SIGINT drain
// gracefully: stop accepting, finish in-flight requests, dump final stats,
// exit. --smoke starts the server on an ephemeral loopback port, drives it
// with an in-process client (query round-trip, identity vs the in-process
// service, statz, graceful drain), and exits nonzero on any mismatch —
// the tier-1 end-to-end check of the whole wire stack.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/snapshot.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "service/query_spec.h"
#include "util/flags.h"
#include "util/io.h"

namespace {

using namespace simsub;

std::atomic<bool> g_shutdown{false};

void OnSignal(int) { g_shutdown.store(true, std::memory_order_release); }

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int SmokeFail(const char* what) {
  std::fprintf(stderr, "smoke FAILED: %s\n", what);
  return 1;
}

/// Loopback self-test: everything a tier-1 test needs from the wire stack
/// in one process — round-trip, remote==local identity, statz, drain.
int RunSmoke(service::QueryService& service, net::Server& server,
             const geo::Trajectory& query) {
  auto client = net::Client::Connect("127.0.0.1", server.port(),
                                     {.client_id = "smoke"});
  if (!client.ok()) return Fail(client.status());

  service::QuerySpec spec;
  spec.points = query.View();
  spec.measure = "dtw";
  spec.algorithm = "pss";
  spec.k = 5;
  spec.deadline_ms = 30'000.0;

  auto remote = client->Query(spec);
  if (!remote.ok()) return Fail(remote.status());
  if (!remote->status.ok()) return Fail(remote->status);
  if (remote->results.empty()) return SmokeFail("remote query: no results");

  // The served answer must be the in-process answer, bit for bit — the
  // codec must not perturb a single double.
  engine::QueryReport local = service.RunOne(spec);
  if (!local.status.ok()) return Fail(local.status);
  if (local.results.size() != remote->results.size()) {
    return SmokeFail("remote/local result count mismatch");
  }
  for (size_t i = 0; i < local.results.size(); ++i) {
    const auto& l = local.results[i];
    const auto& r = remote->results[i];
    if (l.trajectory_id != r.trajectory_id || l.range != r.range ||
        l.distance != r.distance) {
      return SmokeFail("remote/local result mismatch");
    }
  }

  auto statz = client->Statz();
  if (!statz.ok()) return Fail(statz.status());
  if (statz->find("server.queries_answered 1") == std::string::npos) {
    std::fprintf(stderr, "statz dump:\n%s", statz->c_str());
    return SmokeFail("statz missing 'server.queries_answered 1'");
  }

  if (!server.Drain(std::chrono::seconds(10))) {
    return SmokeFail("drain timed out with idle connections");
  }
  std::printf("smoke OK: query round-trip identical to local, statz served, "
              "drain clean (port %d)\n", server.port());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string data_path;
  std::string kind_name = "porto";
  int generate = 0;
  int64_t seed = 42;
  std::string host = "127.0.0.1";
  int port = 7447;
  int threads = 0;
  int max_connections = 32;
  int max_inflight = 0;
  double quota_qps = 0.0;
  double quota_burst = 0.0;
  int drain_ms = 10'000;
  std::string pid_file;
  bool smoke = false;

  util::FlagSet flags(
      "simsub_server: serve a trajectory database over the binary wire "
      "protocol");
  flags.AddString("snapshot", &snapshot_path,
                  "binary columnar snapshot to serve (overrides --data)");
  flags.AddString("data", &data_path, "database CSV to serve");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddInt("generate", &generate,
               "serve a synthetic database of this many trajectories "
               "(overrides --data/--snapshot; for tests and benches)");
  flags.AddInt("seed", &seed, "generator seed (with --generate)");
  flags.AddString("host", &host, "bind address");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral, printed on start)");
  flags.AddInt("threads", &threads, "service worker pool width (0 = cores)");
  flags.AddInt("max_connections", &max_connections, "live connection cap");
  flags.AddInt("max_inflight", &max_inflight,
               "in-flight query window before load-shedding "
               "(0 = 2x worker count)");
  flags.AddDouble("quota_qps", &quota_qps,
                  "per-client sustained queries/second (0 = quotas off)");
  flags.AddDouble("quota_burst", &quota_burst,
                  "per-client token bucket depth (0 = same as rate)");
  flags.AddInt("drain_ms", &drain_ms, "graceful drain budget on SIGTERM");
  flags.AddString("pid_file", &pid_file,
                  "write the server pid here once listening; removed on a "
                  "clean drain (for process supervisors)");
  flags.AddBool("smoke", &smoke,
                "loopback self-test: generate a small database, serve it on "
                "an ephemeral port, verify the wire stack, exit");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  if (smoke) {
    generate = generate > 0 ? generate : 64;
    port = 0;
    host = "127.0.0.1";
  }

  // Build the database: synthetic, snapshot, or CSV.
  geo::Trajectory first_query;  // kept for --smoke before the engine eats it
  std::optional<service::QueryService> service;
  service::ServiceOptions service_options;
  service_options.threads = threads;
  if (generate > 0) {
    auto kind = data::DatasetKindFromName(kind_name);
    if (!kind.ok()) return Fail(kind.status());
    data::Dataset dataset = data::GenerateDataset(
        *kind, generate, static_cast<uint64_t>(seed));
    first_query = dataset.trajectories.front();
    service.emplace(engine::SimSubEngine(std::move(dataset.trajectories)),
                    service_options);
  } else if (!snapshot_path.empty()) {
    // Sweep the snapshot directory first: a writer that crashed mid-write
    // leaves orphaned temp files (and possibly a corrupt snapshot) behind;
    // quarantine them instead of tripping over them.
    auto recovered = data::RecoverSnapshotDir(util::io::DirName(snapshot_path));
    if (recovered.ok()) {
      for (const std::string& q : recovered->quarantined) {
        std::fprintf(stderr, "snapshot recovery: quarantined %s\n", q.c_str());
      }
    } else {
      std::fprintf(stderr, "snapshot recovery skipped: %s\n",
                   recovered.status().ToString().c_str());
    }
    auto snapshot = data::CorpusSnapshot::Open(snapshot_path);
    if (!snapshot.ok()) return Fail(snapshot.status());
    service.emplace(**snapshot, service_options);
  } else if (!data_path.empty()) {
    auto kind = data::DatasetKindFromName(kind_name);
    if (!kind.ok()) return Fail(kind.status());
    auto dataset = data::LoadCsv(data_path, kind_name, *kind);
    if (!dataset.ok()) return Fail(dataset.status());
    service.emplace(engine::SimSubEngine(std::move(dataset->trajectories)),
                    service_options);
  } else {
    return Fail(util::Status::InvalidArgument(
        "no database: pass --snapshot, --data, or --generate"));
  }

  net::ServerOptions server_options;
  server_options.host = host;
  server_options.port = port;
  server_options.max_connections = max_connections;
  server_options.max_inflight = max_inflight;
  server_options.quota_qps = quota_qps;
  server_options.quota_burst = quota_burst;
  net::Server server(*service, server_options);
  if (auto st = server.Start(); !st.ok()) return Fail(st);
  std::printf("simsub_server listening on %s:%d (%lld trajectories, %d "
              "workers, max_inflight=%d)\n",
              host.c_str(), server.port(),
              static_cast<long long>(service->engine().database().size()),
              service->pool().size(), max_inflight);
  std::fflush(stdout);

  // Written only after the listening socket is live, so a supervisor that
  // sees the file can immediately signal the pid it names.
  if (!pid_file.empty()) {
    if (auto st = util::io::WriteStringToFile(
            pid_file, std::to_string(static_cast<long long>(::getpid())) + "\n");
        !st.ok()) {
      return Fail(st);
    }
  }

  if (smoke) return RunSmoke(*service, server, first_query);

  // Serve until SIGTERM/SIGINT, then drain gracefully: stop accepting,
  // finish in-flight requests, dump final stats.
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  while (!g_shutdown.load(std::memory_order_acquire)) {
    ::poll(nullptr, 0, 200);
  }
  std::printf("shutdown signal: draining (budget %d ms)...\n", drain_ms);
  std::fflush(stdout);
  bool drained = server.Drain(std::chrono::milliseconds(drain_ms));
  std::printf("%s\n%s", drained ? "drained clean" : "drain timed out",
              server.StatzText().c_str());
  if (drained && !pid_file.empty()) {
    if (auto st = util::io::RemoveFile(pid_file); !st.ok()) return Fail(st);
  }
  return 0;
}
