#!/usr/bin/env python3
"""Bench-regression gate for the checked-in BENCH_*.json results.

Compares the speedup ratios of freshly measured bench runs against a
checked-in baseline and fails (exit 1) when any ratio regressed by more than
the threshold. Only RATIOS are compared — e.g. scalar-vs-SoA, or async-vs-
sequential from the same run on the same machine — so the gate is portable
across CI runner generations, unlike absolute ns/op numbers.

The gate is suite-aware: every BENCH json names its suite in the top-level
"bench" field, and SUITES below lists the gated ratios and identity bits per
suite. Currently gated:
  * "kernels"        (bench_kernels): SoA kernel speedups + the
                     pruned==unpruned engine identity;
  * "service_mixed"  (bench_service_mixed): mixed-spec async-vs-sequential
                     speedup + the async==sequential identity;
  * "loadgen"        (bench_loadgen): overload shed fraction + the
                     remote==local, shedding-engaged, and p99-within-
                     deadline bits from the open-loop socket bench.
The baseline and every fresh run must come from the same suite; mixing
suites is rejected, as is a quick/full workload mismatch or a SIMSUB_ISA
dispatch-tier mismatch (config.isa): kernel ratios measured under one SIMD
tier are not comparable to another, so CI pins SIMSUB_ISA=avx2 for its bench
runs and the checked-in baselines record the tier they were measured under.

Noise handling:
  * the baseline and the fresh runs must use the same workload config
    (the `config.quick` flag) — quick-mode ratios are not comparable to
    full-workload ones, so CI gates against the *_quick.json baselines;
  * --fresh may be given several times; each ratio takes the best value
    across the runs (run the cheap quick bench twice and single-run noise
    mostly cancels), while every identity bit must hold in EVERY run;
  * the threshold is deliberately generous (25%): a real regression (lost
    autovectorization, broken pruning cascade, a serialized worker pool)
    lands far below it.

Usage:
  check_bench.py --baseline BENCH_kernels_quick.json \
      --fresh build/q1.json --fresh build/q2.json
  check_bench.py --baseline BENCH_service_mixed_quick.json \
      --fresh build/BENCH_service_mixed_quick.json
  check_bench.py --self-test --baseline BENCH_kernels.json

--self-test exercises the gate itself: the baseline must pass against an
identical copy, and must demonstrably FAIL against a synthetically regressed
copy (every speedup scaled to 50%). CI runs the real comparison; ctest runs
the self-test so the gate cannot silently rot.
"""

import argparse
import copy
import json
import sys

# Per-suite gate definition. "ratios" are (json path, human label) pairs,
# all "bigger is better"; "identities" are boolean paths that must be true
# in every fresh run; "ceilings" are (json path, human label, max) triples —
# absolute smaller-is-better bounds that must hold in EVERY fresh run (a
# count-like metric whose healthy value is ~0 has no ratio to compare).
SUITES = {
    "kernels": {
        "ratios": [
            (("distance_row", "speedup"), "distance row SoA speedup"),
            (("squared_distance_row", "speedup"),
             "squared distance row SoA speedup"),
            (("dtw_extend", "speedup"), "DTW extend SoA speedup"),
            (("engine_topk", "speedup"), "engine top-k pruning speedup"),
            # batched/sequential seconds from the same run, i.e. the
            # batched-vs-one-at-a-time qps-per-core ratio — portable across
            # runner speeds like every other gated ratio.
            (("batched", "speedup"), "multi-query batched qps/core ratio"),
        ],
        "identities": [
            (("engine_topk", "pruned_identical_to_unpruned"),
             "pruned results identical to unpruned"),
            (("batched", "identical_to_sequential"),
             "batched results identical to sequential"),
        ],
    },
    "service_mixed": {
        "ratios": [
            (("speedup",), "mixed-spec async-vs-sequential speedup"),
        ],
        "identities": [
            (("identical_to_sequential",),
             "async results identical to sequential"),
        ],
    },
    # Open-loop socket serving (bench_loadgen). Deliberately dimensionless:
    # at 2x-capacity offered load a working admission controller must shed
    # >= ~half the requests (a broken one sheds none and the ratio craters),
    # and the served p99 staying inside the deadline is the bounded-tail
    # property the shedding exists to provide — both hold on any runner
    # speed, unlike absolute-latency ratios.
    "loadgen": {
        "ratios": [
            (("overload_shed_ratio",),
             "overload shed fraction (admission control engaged)"),
        ],
        "identities": [
            (("identical_to_local",),
             "remote results identical to in-process service"),
            (("overload_shed_occurred",),
             "2x-capacity overload produced load shedding"),
            (("overload_p99_within_deadline",),
             "served p99 under overload stays inside the deadline"),
        ],
        # A healthy loopback run needs ~no transport retries; a client that
        # quietly chews through its retry budget (flaky framing, broken
        # reconnect) shows up here long before it breaks a ratio.
        "ceilings": [
            (("retries_per_request",),
             "client transport retries per request", 0.1),
        ],
    },
}


def lookup(doc, path):
    value = doc
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def suite_of(doc, fallback="kernels"):
    # Pre-suite kernel baselines carry "bench": "kernels" already; the
    # fallback only covers hand-rolled files with no bench field.
    return doc.get("bench", fallback)


def merge_best(suite, fresh_docs):
    """Folds several runs into one doc with the best value per gated ratio;
    identity bits are AND-ed (they must hold in every run)."""
    merged = copy.deepcopy(fresh_docs[0])
    for doc in fresh_docs[1:]:
        for path, _ in suite["ratios"]:
            a = lookup(merged, path)
            b = lookup(doc, path)
            if a is not None and b is not None and b > a:
                lookup(merged, path[:-1])[path[-1]] = b
        for path, _ in suite["identities"]:
            if lookup(doc, path) is not True:
                parent = lookup(merged, path[:-1])
                if isinstance(parent, dict):
                    parent[path[-1]] = False
                # else: merged lacks the section entirely; check() reports
                # the missing identity as its own failure.
        for path, _, _ in suite.get("ceilings", []):
            # Worst (largest) value across runs: a ceiling must hold in
            # every run, and checking the max once is the same test.
            a = lookup(merged, path)
            b = lookup(doc, path)
            if a is not None and b is not None and b > a:
                lookup(merged, path[:-1])[path[-1]] = b
    return merged


def check(baseline, fresh, threshold):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []
    base_suite = suite_of(baseline)
    fresh_suite = suite_of(fresh)
    if base_suite != fresh_suite:
        failures.append(
            f"suite mismatch: baseline is '{base_suite}', fresh is "
            f"'{fresh_suite}' — gate each bench against its own baseline")
        return failures
    if base_suite not in SUITES:
        failures.append(f"unknown bench suite '{base_suite}' — add it to "
                        "SUITES in tools/check_bench.py")
        return failures
    suite = SUITES[base_suite]
    base_quick = lookup(baseline, ("config", "quick"))
    fresh_quick = lookup(fresh, ("config", "quick"))
    if base_quick != fresh_quick:
        failures.append(
            f"config mismatch: baseline quick={base_quick}, fresh "
            f"quick={fresh_quick} — quick and full workloads have different "
            "expected ratios; gate against the matching baseline file")
        return failures
    base_isa = lookup(baseline, ("config", "isa"))
    fresh_isa = lookup(fresh, ("config", "isa"))
    if base_isa != fresh_isa:
        failures.append(
            f"config mismatch: baseline isa={base_isa}, fresh "
            f"isa={fresh_isa} — kernel ratios are only comparable within one "
            "SIMSUB dispatch tier; pin SIMSUB_ISA (CI pins avx2) or "
            "regenerate the baseline on the new tier")
        return failures
    print(f"suite: {base_suite}")
    print(f"{'ratio':<40} {'baseline':>9} {'fresh':>9} {'rel':>7}  verdict")
    for path, label in suite["ratios"]:
        base = lookup(baseline, path)
        new = lookup(fresh, path)
        if base is None:
            failures.append(f"baseline is missing {'.'.join(path)}")
            continue
        if new is None:
            failures.append(f"fresh results are missing {'.'.join(path)}")
            continue
        rel = new / base if base > 0 else float("inf")
        ok = rel >= 1.0 - threshold
        print(f"{label:<40} {base:>8.2f}x {new:>8.2f}x {rel:>6.0%}  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"{label} regressed: {base:.2f}x -> {new:.2f}x "
                f"({rel:.0%} of baseline, floor is {1.0 - threshold:.0%})")
    for path, label in suite["identities"]:
        if lookup(fresh, path) is not True:
            failures.append(
                f"{'.'.join(path)} is not true in every fresh run — "
                f"{label} was violated")
    for path, label, limit in suite.get("ceilings", []):
        value = lookup(fresh, path)
        if value is None:
            failures.append(f"fresh results are missing {'.'.join(path)}")
            continue
        ok = value <= limit
        print(f"{label:<40} {'<=':>9}{limit:>8.2f} {value:>8.2f}   "
              f"{'ok' if ok else 'EXCEEDED'}")
        if not ok:
            failures.append(
                f"{label} exceeded its ceiling: {value:.3f} > {limit:.3f}")
    return failures


def self_test(baseline, threshold):
    suite_name = suite_of(baseline)
    if suite_name not in SUITES:
        print(f"self-test FAILED: unknown suite '{suite_name}'")
        return 1
    suite = SUITES[suite_name]
    ok_failures = check(baseline, copy.deepcopy(baseline), threshold)
    if ok_failures:
        print("self-test FAILED: baseline does not pass against itself:")
        for f in ok_failures:
            print(f"  {f}")
        return 1

    regressed = copy.deepcopy(baseline)
    for path, _ in suite["ratios"]:
        parent = lookup(regressed, path[:-1])
        parent[path[-1]] = parent[path[-1]] * 0.5
    print("\ninjecting a 50% regression into every ratio:")
    bad_failures = check(baseline, regressed, threshold)
    if len(bad_failures) != len(suite["ratios"]):
        print("self-test FAILED: injected regression was not caught "
              f"({len(bad_failures)}/{len(suite['ratios'])} ratios flagged)")
        return 1

    broken = copy.deepcopy(baseline)
    for path, _ in suite["identities"]:
        lookup(broken, path[:-1])[path[-1]] = False
    if len(check(baseline, broken, threshold)) != len(suite["identities"]):
        print("self-test FAILED: violated identity bit was not caught")
        return 1

    ceilings = suite.get("ceilings", [])
    if ceilings:
        exceeded = copy.deepcopy(baseline)
        for path, _, limit in ceilings:
            lookup(exceeded, path[:-1])[path[-1]] = 2.0 * limit + 1.0
        print("\npushing every ceiling metric past its limit:")
        if len(check(baseline, exceeded, threshold)) != len(ceilings):
            print("self-test FAILED: exceeded ceiling was not caught")
            return 1

    mismatched = copy.deepcopy(baseline)
    mismatched["config"]["quick"] = not mismatched["config"].get("quick")
    if not check(baseline, mismatched, threshold):
        print("self-test FAILED: config mismatch was not rejected")
        return 1

    wrong_isa = copy.deepcopy(baseline)
    wrong_isa["config"]["isa"] = (
        "baseline" if wrong_isa["config"].get("isa") != "baseline" else "avx2")
    if not check(baseline, wrong_isa, threshold):
        print("self-test FAILED: ISA tier mismatch was not rejected")
        return 1
    print(f"\nself-test OK ({suite_name}): identical copy passes, injected "
          f"regression trips all {len(suite['ratios'])} ratios, broken "
          f"identity, exceeded ceiling ({len(ceilings)}), config mismatch "
          "and ISA mismatch rejected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON (suite and workload "
                             "must match the fresh runs: the *_quick.json "
                             "baselines for --quick runs)")
    parser.add_argument("--fresh", action="append", default=[],
                        help="freshly measured BENCH json (repeatable; best "
                             "value per ratio wins)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated relative regression (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate passes an identical copy and "
                             "fails an injected regression")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.self_test:
        return self_test(baseline, args.threshold)

    if not args.fresh:
        parser.error("--fresh is required unless --self-test is given")
    fresh_docs = []
    for path in args.fresh:
        with open(path) as f:
            fresh_docs.append(json.load(f))
    suite = SUITES.get(suite_of(baseline), SUITES["kernels"])
    failures = check(baseline, merge_best(suite, fresh_docs), args.threshold)
    if failures:
        print("\nbench-regression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
