// simsub command-line tool: generate datasets, ingest them into binary
// columnar snapshots, train RLS policies, and run SimSub queries without
// writing any C++.
//
//   simsub_cli generate --kind=porto --count=1000 --out=city.csv
//   simsub_cli ingest   --data=city.csv --kind=porto --out=city.snap
//   simsub_cli train    --data=city.csv --kind=porto --measure=dtw
//                       --episodes=8000 --skip=3 --out=policy.txt
//   simsub_cli query    --data=city.csv --kind=porto --measure=dtw
//                       --algo=rls --policy=policy.txt --query_id=17 --topk=5
//   simsub_cli query    --snapshot=city.snap --batch --batch_size=64
//                       --threads=8 --plan=auto --algo=pss --deadline_ms=50
//
// The query subcommand runs the chosen algorithm (--algo, any
// algo::MakeSearch name plus "topk-sub") over the whole database through
// the engine (R-tree pruned) and prints the top-k matches. With --snapshot
// the database comes from a mmap'd columnar snapshot (see data/snapshot.h)
// instead of a CSV parse: the engine's SoA reads are zero-copy over the
// mapping and the MBR cache and planner statistics load from the persisted
// sections. With --batch it samples a query workload, wraps every query in
// a declarative service::QuerySpec (measure + algorithm names resolved and
// cached inside the service, optional per-request --deadline_ms), serves it
// through QueryService::SubmitBatch (planner-chosen pruning, persistent
// worker pool, reused evaluator scratch), and prints throughput plus
// queueing vs execution tail latency.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/registry.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/snapshot.h"
#include "data/workload.h"
#include "engine/engine.h"
#include "geo/simd_dispatch.h"
#include "net/client.h"
#include "rl/policy_io.h"
#include "rl/trainer.h"
#include "service/query_service.h"
#include "service/query_spec.h"
#include "similarity/registry.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace {

using namespace simsub;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Splits "host:port" (dotted-quad host) for --connect flags.
util::Result<std::pair<std::string, int>> ParseHostPort(
    const std::string& addr) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return util::Status::InvalidArgument("expected host:port, got " + addr);
  }
  int port = 0;
  try {
    port = std::stoi(addr.substr(colon + 1));
  } catch (...) {
    return util::Status::InvalidArgument("unparseable port in " + addr);
  }
  return std::make_pair(addr.substr(0, colon), port);
}

int RunGenerate(int argc, char** argv) {
  std::string kind_name = "porto";
  int count = 1000;
  int64_t seed = 42;
  std::string out = "dataset.csv";
  util::FlagSet flags("simsub_cli generate: synthesize a trajectory dataset");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddInt("count", &count, "number of trajectories");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddString("out", &out, "output CSV path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto kind = data::DatasetKindFromName(kind_name);
  if (!kind.ok()) return Fail(kind.status());
  data::Dataset dataset =
      data::GenerateDataset(*kind, count, static_cast<uint64_t>(seed));
  if (auto st = data::SaveCsv(dataset, out); !st.ok()) return Fail(st);
  std::printf("wrote %zu trajectories (%lld points) to %s\n",
              dataset.trajectories.size(),
              static_cast<long long>(dataset.TotalPoints()), out.c_str());
  return 0;
}

util::Result<data::Dataset> LoadDataset(const std::string& path,
                                        const std::string& kind_name) {
  auto kind = data::DatasetKindFromName(kind_name);
  if (!kind.ok()) return kind.status();
  return data::LoadCsv(path, kind_name, *kind);
}

int RunIngest(int argc, char** argv) {
  std::string data_path = "dataset.csv";
  std::string kind_name = "porto";
  std::string out = "dataset.snap";
  util::FlagSet flags(
      "simsub_cli ingest: convert a trajectory CSV into a binary columnar "
      "snapshot (mmap-able by 'query --snapshot')");
  flags.AddString("data", &data_path, "input CSV path");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddString("out", &out, "output snapshot path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  util::Stopwatch timer;
  auto dataset = LoadDataset(data_path, kind_name);
  if (!dataset.ok()) return Fail(dataset.status());
  double load_s = timer.ElapsedSeconds();

  util::Stopwatch write_timer;
  if (auto st = data::WriteSnapshot(*dataset, out); !st.ok()) return Fail(st);
  double write_s = write_timer.ElapsedSeconds();

  // Re-open what we just wrote: proves the snapshot verifies end-to-end and
  // reports the persisted statistics.
  auto snapshot = data::CorpusSnapshot::Open(out);
  if (!snapshot.ok()) return Fail(snapshot.status());
  std::printf(
      "ingested %zu trajectories (%lld points) from %s\n"
      "  csv parse %.2f s, snapshot write %.2f s -> %s\n",
      (*snapshot)->trajectory_count(),
      static_cast<long long>((*snapshot)->total_points()), data_path.c_str(),
      load_s, write_s, out.c_str());
  const geo::CorpusStats& stats = (*snapshot)->stats();
  std::printf("  extent [%.1f, %.1f] x [%.1f, %.1f], mean traj mbr %.1f x %.1f\n",
              stats.extent.min_x, stats.extent.max_x, stats.extent.min_y,
              stats.extent.max_y, stats.mean_trajectory_width,
              stats.mean_trajectory_height);
  return 0;
}

int RunTrain(int argc, char** argv) {
  std::string data_path = "dataset.csv";
  std::string kind_name = "porto";
  std::string measure_name = "dtw";
  std::string out = "policy.txt";
  int episodes = 8000;
  int skip = 0;
  int64_t seed = 42;
  util::FlagSet flags("simsub_cli train: train an RLS/RLS-Skip policy");
  flags.AddString("data", &data_path, "training dataset CSV");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddString("measure", &measure_name, "dtw | frechet | erp | ...");
  flags.AddInt("episodes", &episodes, "training episodes");
  flags.AddInt("skip", &skip, "skip actions k (0 = plain RLS)");
  flags.AddInt("seed", &seed, "training seed");
  flags.AddString("out", &out, "output policy path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto dataset = LoadDataset(data_path, kind_name);
  if (!dataset.ok()) return Fail(dataset.status());
  auto measure = similarity::MakeMeasure(measure_name);
  if (!measure.ok()) return Fail(measure.status());

  rl::RlsTrainOptions options;
  options.episodes = episodes;
  options.seed = static_cast<uint64_t>(seed);
  options.env.skip_count = skip;
  // Skip variants train with a discount closer to 1 (see DESIGN.md §5.8).
  options.dqn.gamma = skip > 0 ? 0.99 : 0.95;
  rl::RlsTrainer trainer(measure->get(), options);
  std::printf("training %s on %zu trajectories (%d episodes)...\n",
              skip > 0 ? "RLS-Skip" : "RLS", dataset->trajectories.size(),
              episodes);
  rl::TrainedPolicy policy =
      trainer.Train(dataset->trajectories, dataset->trajectories);
  std::printf("trained in %.1f s (%lld gradient steps)\n",
              trainer.report().train_seconds,
              trainer.report().gradient_steps);
  if (auto st = rl::SavePolicyToFile(policy, out); !st.ok()) return Fail(st);
  std::printf("policy written to %s\n", out.c_str());
  return 0;
}

int RunQuery(int argc, char** argv) {
  std::string data_path = "dataset.csv";
  std::string snapshot_path;
  std::string kind_name = "porto";
  std::string measure_name = "dtw";
  std::string algo_name = "exacts";
  std::string policy_path;
  int64_t query_id = 0;
  int topk = 5;
  int threads = 1;
  bool use_index = true;
  bool prune = true;
  bool batch = false;
  int batch_size = 16;
  int64_t batch_seed = 7;
  double deadline_ms = 0.0;
  std::string plan = "auto";
  std::string connect;
  std::string client_id = "cli";
  util::FlagSet flags("simsub_cli query: top-k similar subtrajectory search");
  flags.AddString("data", &data_path, "database CSV");
  flags.AddString("snapshot", &snapshot_path,
                  "binary columnar snapshot (from 'ingest'); overrides "
                  "--data and serves the database over a mmap'd store");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddString("measure", &measure_name, "dtw | frechet | erp | ...");
  flags.AddString("algo", &algo_name,
                  "exacts | sizes | pss | pos | pos-d | simtra | random-s | "
                  "spring | ucr | rls | rls-skip | topk-sub");
  flags.AddString("algorithm", &algo_name, "alias for --algo");
  flags.AddString("policy", &policy_path,
                  "trained policy (for --algo=rls / rls-skip)");
  flags.AddInt("query_id", &query_id, "trajectory id used as the query");
  flags.AddInt("topk", &topk, "number of results");
  flags.AddInt("threads", &threads,
               "parallel scan width (batch: worker pool size)");
  flags.AddBool("index", &use_index, "use the R-tree filter");
  flags.AddBool("prune", &prune,
                "lower-bound pruning cascade (results are identical either "
                "way; --prune=false measures the unpruned scan)");
  flags.AddBool("batch", &batch,
                "serve a sampled query batch through the QueryService's "
                "async QuerySpec API");
  flags.AddInt("batch_size", &batch_size, "queries per batch (with --batch)");
  flags.AddInt("batch_seed", &batch_seed, "batch sampling seed");
  flags.AddDouble("deadline_ms", &deadline_ms,
                  "per-request deadline for --batch; requests still queued "
                  "past it return DeadlineExceeded instead of running "
                  "(0 = none)");
  flags.AddString("plan", &plan,
                  "pruning filter for --batch: auto | none | rtree | grid");
  flags.AddString("connect", &connect,
                  "serve the query remotely through a running simsub_server "
                  "at host:port; --data/--snapshot supplies only the query "
                  "trajectory, the server's database answers");
  flags.AddString("client_id", &client_id,
                  "client identity for the server's per-client quotas "
                  "(with --connect)");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  if (!connect.empty() && batch) {
    return Fail(util::Status::InvalidArgument(
        "--connect serves one query per call; --batch is local-only"));
  }

  auto kind = data::DatasetKindFromName(kind_name);
  if (!kind.ok()) return Fail(kind.status());
  std::shared_ptr<const data::CorpusSnapshot> snapshot;
  data::Dataset dataset;  // CSV path only; the snapshot path stays columnar
  if (!snapshot_path.empty()) {
    auto opened = data::CorpusSnapshot::Open(snapshot_path);
    if (!opened.ok()) return Fail(opened.status());
    snapshot = *opened;
  } else {
    auto loaded = data::LoadCsv(data_path, kind_name, *kind);
    if (!loaded.ok()) return Fail(loaded.status());
    dataset = std::move(*loaded);
  }
  if (batch) {
    std::optional<engine::PruningFilter> filter_override;
    if (plan == "none") {
      filter_override = engine::PruningFilter::kNone;
    } else if (plan == "rtree") {
      filter_override = engine::PruningFilter::kRTree;
    } else if (plan == "grid") {
      filter_override = engine::PruningFilter::kInvertedGrid;
    } else if (plan != "auto") {
      return Fail(util::Status::InvalidArgument("unknown plan: " + plan));
    }

    // Sample query trajectories before the engine consumes the database.
    // The snapshot overload materializes only the sampled queries from the
    // columns, never the whole corpus.
    std::vector<data::WorkloadPair> workload =
        snapshot != nullptr
            ? data::SampleWorkload(*snapshot, batch_size,
                                   static_cast<uint64_t>(batch_seed))
            : data::SampleWorkload(dataset, batch_size,
                                   static_cast<uint64_t>(batch_seed));

    service::ServiceOptions service_options;
    service_options.threads = threads;
    service_options.prune = prune;
    // QueryService pins its address (self-referential planner/pool), so
    // construct the chosen variant in place.
    std::optional<service::QueryService> service;
    if (snapshot != nullptr) {
      service.emplace(*snapshot, service_options);
    } else {
      service.emplace(engine::SimSubEngine(std::move(dataset.trajectories)),
                      service_options);
    }

    // Every request is one declarative QuerySpec: the service resolves the
    // measure/algorithm names through its registries (cached after the
    // first request) and answers through a future.
    std::vector<service::QuerySpec> specs;
    specs.reserve(workload.size());
    for (const auto& pair : workload) {
      service::QuerySpec spec;
      spec.points = pair.query.View();
      spec.measure = measure_name;
      spec.algorithm = algo_name;
      spec.algorithm_options.rls_policy_path = policy_path;
      spec.k = topk;
      spec.filter = filter_override;
      spec.prune = prune;
      spec.deadline_ms = deadline_ms;
      specs.push_back(spec);
    }

    util::Stopwatch timer;
    std::vector<std::future<engine::QueryReport>> futures =
        service->SubmitBatch(specs);
    std::vector<engine::QueryReport> reports;
    reports.reserve(futures.size());
    for (auto& f : futures) reports.push_back(f.get());
    double wall = timer.ElapsedSeconds();

    std::vector<double> latencies_ms;
    for (size_t i = 0; i < reports.size(); ++i) {
      const auto& r = reports[i];
      if (!r.status.ok()) {
        std::printf("query %3zu (id %5lld): %s (queued %.2f ms)\n", i,
                    static_cast<long long>(workload[i].query.id()),
                    r.status.ToString().c_str(), r.queue_seconds * 1e3);
        continue;
      }
      latencies_ms.push_back(r.seconds * 1e3);
      std::printf(
          "query %3zu (id %5lld): plan=%-5s scanned %5lld pruned %5lld "
          "queued %6.2f ms exec %8.2f ms  best d=%.3f\n",
          i, static_cast<long long>(workload[i].query.id()),
          engine::PruningFilterName(r.filter_used),
          static_cast<long long>(r.trajectories_scanned),
          static_cast<long long>(r.trajectories_pruned),
          r.queue_seconds * 1e3, r.seconds * 1e3,
          r.results.empty() ? -1.0 : r.results.front().distance);
    }
    service::ServiceStats stats = service->stats();
    std::printf(
        "batch of %zu specs (%s/%s, pool=%d): %.1f ms wall, %.1f q/s, "
        "exec p50 %.2f ms, p99 %.2f ms\n",
        reports.size(), algo_name.c_str(), measure_name.c_str(),
        service->pool().size(), wall * 1e3,
        wall > 0 ? static_cast<double>(reports.size()) / wall : 0.0,
        util::Quantile(latencies_ms, 0.5), util::Quantile(latencies_ms, 0.99));
    std::printf(
        "served %lld, deadline-expired %lld, rejected %lld; plans: none=%lld "
        "rtree=%lld grid=%lld; evaluator scratch: %lld reused / %lld "
        "allocated\n",
        static_cast<long long>(stats.queries_served),
        static_cast<long long>(stats.deadline_expired),
        static_cast<long long>(stats.rejected),
        static_cast<long long>(stats.plans_none),
        static_cast<long long>(stats.plans_rtree),
        static_cast<long long>(stats.plans_grid),
        static_cast<long long>(stats.evaluator_reuses),
        static_cast<long long>(stats.evaluator_allocs));
    if (stats.rejected > 0) {
      // Invalid specs (unknown measure/algorithm, bad parameters, missing
      // policy) are per-request report statuses, but a batch that rejected
      // anything must still fail the process for scripts keying off the
      // exit code. Deadline expiry is an expected under-load outcome and
      // does not fail the run.
      std::fprintf(stderr, "error: %lld of %zu requests were rejected\n",
                   static_cast<long long>(stats.rejected), reports.size());
      return 1;
    }
    return 0;
  }

  auto measure = similarity::MakeMeasure(measure_name);
  if (!measure.ok()) return Fail(measure.status());
  algo::SearchOptions search_options;
  search_options.rls_policy_path = policy_path;
  std::unique_ptr<algo::SubtrajectorySearch> search;
  // Remote mode resolves the algorithm (and reads any rls_policy_path)
  // server-side; only the local path needs a search instance here.
  if (connect.empty() && algo_name != "topk-sub") {
    auto made = algo::MakeSearch(algo_name, measure->get(), search_options);
    if (!made.ok()) return Fail(made.status());
    search = std::move(*made);
  }

  geo::Trajectory query_copy;  // owned: the engine consumes the database
  if (snapshot != nullptr) {
    // Materialize only the query trajectory from the columns; the engine
    // builds its own AoS database straight from the mapping.
    const auto& ids = snapshot->ids();
    size_t ordinal = ids.size();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == query_id) ordinal = i;
    }
    if (ordinal == ids.size()) {
      return Fail(util::Status::NotFound("no trajectory with id " +
                                         std::to_string(query_id)));
    }
    query_copy = snapshot->MaterializeTrajectory(ordinal);
  } else {
    const geo::Trajectory* query = nullptr;
    for (const auto& t : dataset.trajectories) {
      if (t.id() == query_id) query = &t;
    }
    if (query == nullptr) {
      return Fail(util::Status::NotFound("no trajectory with id " +
                                         std::to_string(query_id)));
    }
    query_copy = *query;
  }

  if (!connect.empty()) {
    auto host_port = ParseHostPort(connect);
    if (!host_port.ok()) return Fail(host_port.status());
    auto client = net::Client::Connect(host_port->first, host_port->second,
                                       {.client_id = client_id});
    if (!client.ok()) return Fail(client.status());
    service::QuerySpec spec;
    spec.points = query_copy.View();
    spec.measure = measure_name;
    spec.algorithm = algo_name;
    spec.algorithm_options.rls_policy_path = policy_path;
    spec.k = topk;
    spec.prune = prune;
    spec.deadline_ms = deadline_ms;
    auto report = client->Query(spec);
    if (!report.ok()) return Fail(report.status());
    if (!report->status.ok()) return Fail(report->status);
    std::printf(
        "%s/%s via %s: %.1f ms exec + %.1f ms queued (plan=%s, %lld "
        "scanned, %lld pruned)\n",
        algo_name.c_str(), measure_name.c_str(), connect.c_str(),
        report->seconds * 1e3, report->queue_seconds * 1e3,
        engine::PruningFilterName(report->filter_used),
        static_cast<long long>(report->trajectories_scanned),
        static_cast<long long>(report->trajectories_pruned));
    for (const auto& hit : report->results) {
      std::printf("  trajectory %6lld  range [%4lld, %4lld]  distance %.3f\n",
                  static_cast<long long>(hit.trajectory_id),
                  static_cast<long long>(hit.range.start),
                  static_cast<long long>(hit.range.end), hit.distance);
    }
    return 0;
  }

  std::optional<engine::SimSubEngine> engine_storage;
  if (snapshot != nullptr) {
    engine_storage.emplace(*snapshot);
  } else {
    engine_storage.emplace(std::move(dataset.trajectories));
  }
  engine::SimSubEngine& engine = *engine_storage;
  if (use_index) engine.BuildIndex();
  util::Stopwatch timer;
  engine::PruningFilter filter = use_index ? engine::PruningFilter::kRTree
                                           : engine::PruningFilter::kNone;
  engine::QueryReport report;
  if (algo_name == "topk-sub") {
    report = engine.QueryTopKSubtrajectories(query_copy.View(),
                                             *measure->get(), topk, filter);
  } else {
    engine::QueryOptions query_options;
    query_options.k = topk;
    query_options.filter = filter;
    query_options.threads = threads;
    query_options.prune = prune;
    report = engine.Query(query_copy.View(), *search, query_options);
  }
  std::printf(
      "%s/%s over %lld trajectories: %.1f ms (%lld scanned, %lld pruned, "
      "%lld lb-skipped, %lld dp-abandoned)\n",
      search != nullptr ? search->name().c_str() : "topk-sub",
      measure_name.c_str(),
      static_cast<long long>(engine.database().size()),
      timer.ElapsedMillis(),
      static_cast<long long>(report.trajectories_scanned),
      static_cast<long long>(report.trajectories_pruned),
      static_cast<long long>(report.lb_skipped),
      static_cast<long long>(report.dp_abandoned));
  for (const auto& hit : report.results) {
    std::printf("  trajectory %6lld  range [%4lld, %4lld]  distance %.3f\n",
                static_cast<long long>(hit.trajectory_id),
                static_cast<long long>(hit.range.start),
                static_cast<long long>(hit.range.end), hit.distance);
  }
  return 0;
}

int RunStatz(int argc, char** argv) {
  std::string connect = "127.0.0.1:7447";
  util::FlagSet flags(
      "simsub_cli statz: dump a running simsub_server's statistics");
  flags.AddString("connect", &connect, "server address (host:port)");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  auto host_port = ParseHostPort(connect);
  if (!host_port.ok()) return Fail(host_port.status());
  auto client = net::Client::Connect(host_port->first, host_port->second);
  if (!client.ok()) return Fail(client.status());
  auto statz = client->Statz();
  if (!statz.ok()) return Fail(statz.status());
  std::fputs(statz->c_str(), stdout);
  return 0;
}

// Prints the SIMD dispatch decision for this host: which ISA tier the
// kernels will run under, and the best tier the CPU supports. Lets CI and
// operators confirm a SIMSUB_ISA override (or its clamping) without running
// a query.
int RunIsa(int argc, char** argv) {
  util::FlagSet flags(
      "simsub_cli isa: print the runtime SIMD kernel dispatch decision");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  const char* override_env = std::getenv("SIMSUB_ISA");
  std::printf("active:    %s\n", geo::ActiveIsaName());
  std::printf("supported: %s\n", geo::IsaTierName(geo::BestSupportedIsa()));
  std::printf("override:  %s\n",
              override_env != nullptr && override_env[0] != '\0' ? override_env
                                                                 : "(none)");
  return 0;
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s <subcommand> [flags]\n"
               "\n"
               "subcommands:\n"
               "  generate  synthesize a trajectory dataset and write it as CSV\n"
               "  ingest    convert a CSV dataset into a binary columnar snapshot\n"
               "  train     train an RLS/RLS-Skip policy on a dataset\n"
               "  query     run a top-k similar subtrajectory search\n"
               "            (--connect=host:port serves it via simsub_server)\n"
               "  statz     dump a running simsub_server's statistics\n"
               "  isa       print the runtime SIMD kernel dispatch decision\n"
               "\n"
               "run '%s <subcommand> --help' for the subcommand's flags\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  std::string subcommand = argv[1];
  if (subcommand == "--help" || subcommand == "-h" || subcommand == "help") {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  // Shift argv so the subcommand's FlagSet sees only its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (subcommand == "generate") return RunGenerate(sub_argc, sub_argv);
  if (subcommand == "ingest") return RunIngest(sub_argc, sub_argv);
  if (subcommand == "train") return RunTrain(sub_argc, sub_argv);
  if (subcommand == "query") return RunQuery(sub_argc, sub_argv);
  if (subcommand == "statz") return RunStatz(sub_argc, sub_argv);
  if (subcommand == "isa") return RunIsa(sub_argc, sub_argv);
  std::fprintf(stderr, "unknown subcommand: %s\n", subcommand.c_str());
  PrintUsage(stderr, argv[0]);
  return 1;
}
