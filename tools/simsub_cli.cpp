// simsub command-line tool: generate datasets, train RLS policies, and run
// SimSub queries against trajectory CSV files without writing any C++.
//
//   simsub_cli generate --kind=porto --count=1000 --out=city.csv
//   simsub_cli train    --data=city.csv --kind=porto --measure=dtw
//                       --episodes=8000 --skip=3 --out=policy.txt
//   simsub_cli query    --data=city.csv --kind=porto --measure=dtw
//                       --policy=policy.txt --query_id=17 --topk=5
//
// The query subcommand runs the chosen algorithm over the whole database
// through the engine (R-tree pruned) and prints the top-k matches.
#include <cstdio>
#include <memory>
#include <string>

#include "algo/exacts.h"
#include "algo/rls.h"
#include "algo/splitting.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "engine/engine.h"
#include "rl/policy_io.h"
#include "rl/trainer.h"
#include "similarity/registry.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

using namespace simsub;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunGenerate(int argc, char** argv) {
  std::string kind_name = "porto";
  int count = 1000;
  int64_t seed = 42;
  std::string out = "dataset.csv";
  util::FlagSet flags("simsub_cli generate: synthesize a trajectory dataset");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddInt("count", &count, "number of trajectories");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddString("out", &out, "output CSV path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto kind = data::DatasetKindFromName(kind_name);
  if (!kind.ok()) return Fail(kind.status());
  data::Dataset dataset =
      data::GenerateDataset(*kind, count, static_cast<uint64_t>(seed));
  if (auto st = data::SaveCsv(dataset, out); !st.ok()) return Fail(st);
  std::printf("wrote %zu trajectories (%lld points) to %s\n",
              dataset.trajectories.size(),
              static_cast<long long>(dataset.TotalPoints()), out.c_str());
  return 0;
}

util::Result<data::Dataset> LoadDataset(const std::string& path,
                                        const std::string& kind_name) {
  auto kind = data::DatasetKindFromName(kind_name);
  if (!kind.ok()) return kind.status();
  return data::LoadCsv(path, kind_name, *kind);
}

int RunTrain(int argc, char** argv) {
  std::string data_path = "dataset.csv";
  std::string kind_name = "porto";
  std::string measure_name = "dtw";
  std::string out = "policy.txt";
  int episodes = 8000;
  int skip = 0;
  int64_t seed = 42;
  util::FlagSet flags("simsub_cli train: train an RLS/RLS-Skip policy");
  flags.AddString("data", &data_path, "training dataset CSV");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddString("measure", &measure_name, "dtw | frechet | erp | ...");
  flags.AddInt("episodes", &episodes, "training episodes");
  flags.AddInt("skip", &skip, "skip actions k (0 = plain RLS)");
  flags.AddInt("seed", &seed, "training seed");
  flags.AddString("out", &out, "output policy path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto dataset = LoadDataset(data_path, kind_name);
  if (!dataset.ok()) return Fail(dataset.status());
  auto measure = similarity::MakeMeasure(measure_name);
  if (!measure.ok()) return Fail(measure.status());

  rl::RlsTrainOptions options;
  options.episodes = episodes;
  options.seed = static_cast<uint64_t>(seed);
  options.env.skip_count = skip;
  // Skip variants train with a discount closer to 1 (see DESIGN.md §5.8).
  options.dqn.gamma = skip > 0 ? 0.99 : 0.95;
  rl::RlsTrainer trainer(measure->get(), options);
  std::printf("training %s on %zu trajectories (%d episodes)...\n",
              skip > 0 ? "RLS-Skip" : "RLS", dataset->trajectories.size(),
              episodes);
  rl::TrainedPolicy policy =
      trainer.Train(dataset->trajectories, dataset->trajectories);
  std::printf("trained in %.1f s (%lld gradient steps)\n",
              trainer.report().train_seconds,
              trainer.report().gradient_steps);
  if (auto st = rl::SavePolicyToFile(policy, out); !st.ok()) return Fail(st);
  std::printf("policy written to %s\n", out.c_str());
  return 0;
}

int RunQuery(int argc, char** argv) {
  std::string data_path = "dataset.csv";
  std::string kind_name = "porto";
  std::string measure_name = "dtw";
  std::string algorithm = "exact";
  std::string policy_path;
  int64_t query_id = 0;
  int topk = 5;
  int threads = 1;
  bool use_index = true;
  util::FlagSet flags("simsub_cli query: top-k similar subtrajectory search");
  flags.AddString("data", &data_path, "database CSV");
  flags.AddString("kind", &kind_name, "porto | harbin | sports");
  flags.AddString("measure", &measure_name, "dtw | frechet | erp | ...");
  flags.AddString("algorithm", &algorithm, "exact | pss | rls");
  flags.AddString("policy", &policy_path, "trained policy (for --algorithm=rls)");
  flags.AddInt("query_id", &query_id, "trajectory id used as the query");
  flags.AddInt("topk", &topk, "number of results");
  flags.AddInt("threads", &threads, "parallel scan width");
  flags.AddBool("index", &use_index, "use the R-tree filter");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto dataset = LoadDataset(data_path, kind_name);
  if (!dataset.ok()) return Fail(dataset.status());
  auto measure = similarity::MakeMeasure(measure_name);
  if (!measure.ok()) return Fail(measure.status());

  const geo::Trajectory* query = nullptr;
  for (const auto& t : dataset->trajectories) {
    if (t.id() == query_id) query = &t;
  }
  if (query == nullptr) {
    return Fail(util::Status::NotFound("no trajectory with id " +
                                       std::to_string(query_id)));
  }
  geo::Trajectory query_copy = *query;  // engine takes ownership of the db

  std::unique_ptr<algo::SubtrajectorySearch> search;
  if (algorithm == "exact") {
    search = std::make_unique<algo::ExactS>(measure->get());
  } else if (algorithm == "pss") {
    search = std::make_unique<algo::PssSearch>(measure->get());
  } else if (algorithm == "rls") {
    if (policy_path.empty()) {
      return Fail(util::Status::InvalidArgument(
          "--algorithm=rls requires --policy"));
    }
    auto policy = rl::LoadPolicyFromFile(policy_path);
    if (!policy.ok()) return Fail(policy.status());
    search = std::make_unique<algo::RlsSearch>(measure->get(), *policy);
  } else {
    return Fail(util::Status::InvalidArgument("unknown algorithm: " +
                                              algorithm));
  }

  engine::SimSubEngine engine(std::move(dataset->trajectories));
  if (use_index) engine.BuildIndex();
  util::Stopwatch timer;
  engine::QueryReport report = engine.Query(
      query_copy.View(), *search, topk,
      use_index ? engine::PruningFilter::kRTree : engine::PruningFilter::kNone,
      /*index_margin=*/0.0, threads);
  std::printf(
      "%s/%s over %lld trajectories: %.1f ms (%lld scanned, %lld pruned)\n",
      search->name().c_str(), measure_name.c_str(),
      static_cast<long long>(engine.database().size()),
      timer.ElapsedMillis(),
      static_cast<long long>(report.trajectories_scanned),
      static_cast<long long>(report.trajectories_pruned));
  for (const auto& hit : report.results) {
    std::printf("  trajectory %6lld  range [%4d, %4d]  distance %.3f\n",
                static_cast<long long>(hit.trajectory_id), hit.range.start,
                hit.range.end, hit.distance);
  }
  return 0;
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s <subcommand> [flags]\n"
               "\n"
               "subcommands:\n"
               "  generate  synthesize a trajectory dataset and write it as CSV\n"
               "  train     train an RLS/RLS-Skip policy on a dataset\n"
               "  query     run a top-k similar subtrajectory search\n"
               "\n"
               "run '%s <subcommand> --help' for the subcommand's flags\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  std::string subcommand = argv[1];
  if (subcommand == "--help" || subcommand == "-h" || subcommand == "help") {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  // Shift argv so the subcommand's FlagSet sees only its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (subcommand == "generate") return RunGenerate(sub_argc, sub_argv);
  if (subcommand == "train") return RunTrain(sub_argc, sub_argv);
  if (subcommand == "query") return RunQuery(sub_argc, sub_argv);
  std::fprintf(stderr, "unknown subcommand: %s\n", subcommand.c_str());
  PrintUsage(stderr, argv[0]);
  return 1;
}
