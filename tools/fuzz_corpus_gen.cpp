// Deterministic seed-corpus generator for the fuzz harnesses (fuzz/).
//
//   fuzz_corpus_gen <out_root>
//
// Writes one subdirectory per harness (wire/, snapshot/, csv/, failpoint/,
// resolve/) containing seeds built with the real encoders — EncodeQuery,
// EncodeReport, WriteSnapshot, SaveCsv — plus near-valid corruptions of
// each, so coverage-guided fuzzing starts on the deep decode paths instead
// of spending its budget rediscovering the envelope formats. Output is a
// pure function of this source file (fixed values, no clocks, no
// randomness): regenerating into a clean directory reproduces the corpus
// byte for byte.
//
// The checked-in fuzz/corpus/ trees were produced by this tool and then
// extended with minimized regression inputs from fuzzing runs; regenerate
// with care (it will not delete regression files, but it will overwrite
// seed-* files it owns).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/snapshot.h"
#include "engine/engine.h"
#include "geo/point.h"
#include "geo/trajectory.h"
#include "net/wire.h"
#include "service/query_spec.h"
#include "util/io.h"
#include "util/status.h"

namespace {

namespace fs = std::filesystem;
using namespace simsub;

// Wire-harness mode prefixes (fuzz/harness_wire.cc): the first corpus byte
// routes the rest of the input to one decoder.
constexpr uint8_t kModeQuery = 0;
constexpr uint8_t kModeReport = 1;
constexpr uint8_t kModeError = 2;
constexpr uint8_t kModeFrame = 3;

bool WriteBytes(const fs::path& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool WriteText(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

std::vector<uint8_t> Prefixed(uint8_t mode, std::vector<uint8_t> payload) {
  payload.insert(payload.begin(), mode);
  return payload;
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

service::QuerySpec FullSpec(std::span<const geo::Point> points) {
  service::QuerySpec spec;
  spec.measure = "cdtw";
  spec.measure_options.cdtw_band_fraction = 0.25;
  spec.measure_options.edr_eps = 50.0;
  spec.measure_options.lcss_eps = 75.0;
  spec.measure_options.erp_gap = geo::Point(1.5, -2.5);
  spec.algorithm = "sizes";
  spec.algorithm_options.sizes_xi = 7;
  spec.algorithm_options.posd_delay = 3;
  spec.algorithm_options.random_s_samples = 64;
  spec.algorithm_options.random_s_seed = 99;
  spec.algorithm_options.band_fraction = 0.5;
  spec.k = 5;
  spec.min_size = 2;
  spec.filter = engine::PruningFilter::kRTree;
  spec.prune = true;
  spec.deadline_ms = 250.0;
  spec.points = points;
  return spec;
}

int GenWire(const fs::path& dir) {
  const std::vector<geo::Point> pts = {geo::Point(1.0, 2.0, 0.0),
                                       geo::Point(3.0, 4.0, 1.0),
                                       geo::Point(5.0, 6.0, 2.0)};
  auto full = net::EncodeQuery(FullSpec(pts), "corpus-client", 77);
  if (!full.ok()) return 1;
  service::QuerySpec minimal;
  minimal.points = std::span<const geo::Point>(pts.data(), 1);
  auto min_q = net::EncodeQuery(minimal, "", 0);
  if (!min_q.ok()) return 1;

  engine::QueryReport report;
  report.results.push_back({42, geo::SubRange(3, 9), 1.25});
  report.results.push_back({-7, geo::SubRange(0, 1), 2.5});
  report.trajectories_scanned = 100;
  report.trajectories_pruned = 40;
  report.lb_skipped = 10;
  report.dp_abandoned = 5;
  report.seconds = 0.125;
  report.queue_seconds = 0.0625;
  report.status = util::Status::OK();
  report.filter_used = engine::PruningFilter::kInvertedGrid;
  report.planned_selectivity = 0.75;
  report.plan_reason = "corpus seed";

  bool ok = true;
  ok &= WriteBytes(dir / "seed-query-full", Prefixed(kModeQuery, *full));
  ok &= WriteBytes(dir / "seed-query-min", Prefixed(kModeQuery, *min_q));
  // Near-valid corruption: wrong version byte, rejected on the first read.
  std::vector<uint8_t> bad_version = *full;
  bad_version[0] = uint8_t(net::kWireVersion + 1);
  ok &= WriteBytes(dir / "seed-query-badversion",
                   Prefixed(kModeQuery, bad_version));
  ok &= WriteBytes(dir / "seed-report-ok",
                   Prefixed(kModeReport, net::EncodeReport(report, 77)));
  engine::QueryReport failed;
  failed.status = util::Status::DeadlineExceeded("deadline of 250ms expired");
  ok &= WriteBytes(dir / "seed-report-error",
                   Prefixed(kModeReport, net::EncodeReport(failed, 1)));
  ok &= WriteBytes(
      dir / "seed-error",
      Prefixed(kModeError,
               net::EncodeError(util::Status::InvalidArgument("seed"))));

  // Frame mode: length prefix + type byte + payload, as WriteFrame lays it
  // out, followed by a second truncated frame.
  std::vector<uint8_t> stream;
  uint32_t len = static_cast<uint32_t>(min_q->size());
  for (int i = 0; i < 4; ++i) stream.push_back(uint8_t(len >> (8 * i)));
  stream.push_back(uint8_t(net::FrameType::kQuery));
  stream.insert(stream.end(), min_q->begin(), min_q->end());
  stream.insert(stream.end(), {0xff, 0xff, 0x00, 0x00, 0x01});  // huge claim
  ok &= WriteBytes(dir / "seed-frame-query", Prefixed(kModeFrame, stream));
  return ok ? 0 : 1;
}

int GenSnapshot(const fs::path& dir) {
  data::Dataset dataset;
  dataset.name = "corpus";
  dataset.kind = data::DatasetKind::kPorto;
  dataset.trajectories.emplace_back(
      std::vector<geo::Point>{geo::Point(0.0, 0.0, 0.0),
                              geo::Point(1.0, 1.0, 1.0),
                              geo::Point(2.0, 0.5, 2.0)},
      /*id=*/1);
  dataset.trajectories.emplace_back(
      std::vector<geo::Point>{geo::Point(5.0, 5.0, 0.0),
                              geo::Point(6.0, 5.5, 1.0)},
      /*id=*/2);
  const fs::path valid = dir / "seed-valid-small";
  if (!data::WriteSnapshot(dataset, valid.string()).ok()) return 1;
  auto bytes = util::io::ReadFileBytes(valid.string());
  if (!bytes.ok()) return 1;
  std::vector<uint8_t> flipped(bytes->begin(), bytes->end());
  flipped[flipped.size() / 2] ^= 0x40;  // payload bit flip: checksum seed
  bool ok = WriteBytes(dir / "seed-bitflip", flipped);
  std::vector<uint8_t> truncated(bytes->begin(),
                                 bytes->begin() + long(bytes->size() / 3));
  ok &= WriteBytes(dir / "seed-truncated", truncated);
  std::vector<uint8_t> header_only(bytes->begin(), bytes->begin() + 96);
  ok &= WriteBytes(dir / "seed-header-only", header_only);
  return ok ? 0 : 1;
}

int GenCsv(const fs::path& dir) {
  bool ok = WriteText(dir / "seed-valid",
                      "trajectory_id,x,y,t\n"
                      "1,0.5,1.5,0\n"
                      "1,0.75,1.25,1\n"
                      "2,-3.5,4.5,0\n");
  ok &= WriteText(dir / "seed-no-header", "7,1,2,3\n7,4,5,6\n");
  ok &= WriteText(dir / "seed-bad-field", "1,0.5,oops,0\n");
  ok &= WriteText(dir / "seed-short-row", "1,0.5\n");
  ok &= WriteText(dir / "seed-crlf-blank", "1,1,1,1\r\n\r\n1,2,2,2\r\n");
  return ok ? 0 : 1;
}

int GenFailpoint(const fs::path& dir) {
  bool ok = WriteText(dir / "seed-simple", "io.read=error");
  ok &= WriteText(dir / "seed-multi",
                  "io.open=error@once;io.write=delay:5@nth:3;"
                  "io.fsync=abort@times:2;io.read=error@prob:0.5:42");
  ok &= WriteText(dir / "seed-off", "io.read=off;io.write=error");
  ok &= WriteText(dir / "seed-bad-operand", "a=delay:;b=prob:nan");
  ok &= WriteText(dir / "seed-no-eq", "just-a-site-name");
  return ok ? 0 : 1;
}

int GenResolve(const fs::path& dir) {
  // Field order must match fuzz/harness_resolve.cc's Bytes reader:
  // 6 f64 measure options, measure selector u8, 3 i32-as-u64, u64 seed,
  // f64 band, algorithm selector u8, then point coordinates.
  auto seed = [](double band, uint8_t measure_sel, uint8_t algo_sel) {
    std::vector<uint8_t> b;
    AppendF64(&b, band);       // cdtw_band_fraction
    AppendF64(&b, 50.0);       // edr_eps
    AppendF64(&b, 75.0);       // lcss_eps
    AppendF64(&b, 1.0);        // erp_gap.x
    AppendF64(&b, -1.0);       // erp_gap.y
    AppendF64(&b, 0.0);        // erp_gap.t
    b.push_back(measure_sel);
    AppendU64(&b, 5);          // sizes_xi
    AppendU64(&b, 3);          // posd_delay
    AppendU64(&b, 16);         // random_s_samples
    AppendU64(&b, 42);         // random_s_seed
    AppendF64(&b, 0.5);        // band_fraction
    b.push_back(algo_sel);
    for (int i = 0; i < 6; ++i) AppendF64(&b, double(i));
    return b;
  };
  bool ok = true;
  // One seed per measure index (7 builtins) against a rotating algorithm.
  for (uint8_t m = 0; m < 7; ++m) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed-measure-%u", unsigned(m));
    ok &= WriteBytes(dir / name, seed(0.25, m, uint8_t(m + 1)));
  }
  // Hostile option values the resolution layer must reject, not abort on.
  std::vector<uint8_t> nan_band = seed(0.25, 2, 8);
  {
    std::vector<uint8_t> b;
    AppendF64(&b, std::nan(""));
    std::copy(b.begin(), b.end(), nan_band.begin());
  }
  ok &= WriteBytes(dir / "seed-nan-band", nan_band);
  ok &= WriteBytes(dir / "seed-raw-name", seed(0.25, 0x7, 0x7));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out_root>\n", argv[0]);
    return 1;
  }
  const fs::path root = argv[1];
  int rc = 0;
  struct {
    const char* name;
    int (*gen)(const fs::path&);
  } kGenerators[] = {{"wire", GenWire},
                     {"snapshot", GenSnapshot},
                     {"csv", GenCsv},
                     {"failpoint", GenFailpoint},
                     {"resolve", GenResolve}};
  for (const auto& g : kGenerators) {
    const fs::path dir = root / g.name;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create %s: %s\n",
                   dir.string().c_str(), ec.message().c_str());
      return 1;
    }
    const int one = g.gen(dir);
    if (one != 0) {
      std::fprintf(stderr, "error: generator '%s' failed\n", g.name);
      rc = one;
    }
  }
  if (rc == 0) std::printf("seed corpora written under %s\n", root.string().c_str());
  return rc;
}
